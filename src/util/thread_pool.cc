#include "util/thread_pool.h"

#include <algorithm>

namespace tdb {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  queues_.reserve(n);
  for (int i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(Task task) {
  uint64_t slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot = next_queue_++;
    ++queued_;
    ++in_flight_;
  }
  WorkerQueue& q = *queues_[slot % queues_.size()];
  {
    std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(
    size_t count, const std::function<void(size_t index, int worker)>& body) {
  // `body` is captured by reference: Wait() below outlives every task.
  for (size_t i = 0; i < count; ++i) {
    Submit([&body, i](int worker) { body(i, worker); });
  }
  Wait();
}

size_t ThreadPool::NumChunks(size_t count, size_t grain) const {
  if (count == 0) return 1;
  grain = std::max<size_t>(grain, 1);
  // Enough chunks to keep every worker fed with a little slack for load
  // imbalance, but never chunks smaller than the grain (task overhead
  // would dominate tiny slices).
  const size_t cap = static_cast<size_t>(num_threads()) * 4;
  const size_t wanted = (count + grain - 1) / grain;
  return std::max<size_t>(1, std::min(wanted, cap));
}

void ThreadPool::ParallelForChunks(
    size_t count, size_t grain,
    const std::function<void(size_t begin, size_t end, int worker)>& body) {
  if (count == 0) return;
  const size_t chunks = NumChunks(count, grain);
  const size_t step = (count + chunks - 1) / chunks;
  if (chunks == 1) {
    body(0, count, 0);
    return;
  }
  // `body` is captured by reference: Wait() below outlives every task.
  for (size_t begin = 0; begin < count; begin += step) {
    const size_t end = std::min(begin + step, count);
    Submit([&body, begin, end](int worker) { body(begin, end, worker); });
  }
  Wait();
}

int ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::Task ThreadPool::NextTask(int worker) {
  // Own queue first (front: oldest = biggest component under the engine's
  // size-descending submission order)...
  WorkerQueue& own = *queues_[worker];
  {
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      Task t = std::move(own.tasks.front());
      own.tasks.pop_front();
      return t;
    }
  }
  // ...then steal from the back of the others, scanning from the next
  // index so victims differ across workers.
  const int n = static_cast<int>(queues_.size());
  for (int d = 1; d < n; ++d) {
    WorkerQueue& victim = *queues_[(worker + d) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      Task t = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return t;
    }
  }
  return Task();
}

void ThreadPool::WorkerLoop(int worker) {
  for (;;) {
    Task task = NextTask(worker);
    if (task) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        --queued_;
      }
      task(worker);
      bool done;
      {
        std::lock_guard<std::mutex> lock(mu_);
        done = --in_flight_ == 0;
      }
      if (done) all_done_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return;
    // Re-check under the lock: a Submit may have landed between the failed
    // scan and the lock acquisition.
    work_available_.wait(lock, [this] { return stop_ || queued_ > 0; });
  }
}

}  // namespace tdb
