// RAII ownership of a C stdio stream.
//
// The persistence layer and the graph loaders all manage FILE* handles
// with early-return error paths; one shared closer keeps those paths
// leak-free without each file reinventing it.
#ifndef TDB_UTIL_CFILE_H_
#define TDB_UTIL_CFILE_H_

#include <cstdio>
#include <memory>

namespace tdb {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};

/// Owning FILE* handle; closes on scope exit, release() to hand off.
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace tdb

#endif  // TDB_UTIL_CFILE_H_
