#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace tdb {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }

LogLevel GetLogLevel() { return g_level.load(); }

void Log(LogLevel level, const char* format, ...) {
  if (static_cast<int>(level) > static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[tdb %s] ", LevelTag(level));
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fprintf(stderr, "\n");
}

}  // namespace tdb
