#include "util/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace tdb {

namespace {

/// %.9g covers every bucket edge and count exactly enough for both
/// exporters while staying locale-independent.
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

/// HELP text escaping per the exposition format: backslash and newline.
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Highest bucket worth emitting: everything above the last non-empty
/// bucket carries the same cumulative count, which +Inf already states.
int LastNonEmptyBucket(const LatencyHistogram& h) {
  int last = 0;
  for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    if (h.BucketCount(b) > 0) last = b;
  }
  return last;
}

}  // namespace

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

bool MetricRegistry::IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

const MetricRegistry::Entry* MetricRegistry::FindLocked(
    const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

Counter* MetricRegistry::AddCounter(const std::string& name,
                                    const std::string& help) {
  TDB_CHECK(IsValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  if (const Entry* existing = FindLocked(name)) {
    TDB_CHECK(existing->type == Type::kCounter &&
              existing->owned_counter != nullptr);
    return existing->owned_counter.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->id = next_id_++;
  entry->name = name;
  entry->help = help;
  entry->type = Type::kCounter;
  entry->owned_counter = std::make_unique<Counter>();
  Counter* counter = entry->owned_counter.get();
  entry->counter_value = [counter] { return counter->Value(); };
  entries_.push_back(std::move(entry));
  return counter;
}

Gauge* MetricRegistry::AddGauge(const std::string& name,
                                const std::string& help) {
  TDB_CHECK(IsValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  if (const Entry* existing = FindLocked(name)) {
    TDB_CHECK(existing->type == Type::kGauge &&
              existing->owned_gauge != nullptr);
    return existing->owned_gauge.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->id = next_id_++;
  entry->name = name;
  entry->help = help;
  entry->type = Type::kGauge;
  entry->owned_gauge = std::make_unique<Gauge>();
  Gauge* gauge = entry->owned_gauge.get();
  entry->gauge_value = [gauge] { return gauge->Value(); };
  entries_.push_back(std::move(entry));
  return gauge;
}

LatencyHistogram* MetricRegistry::AddHistogram(const std::string& name,
                                               const std::string& help) {
  TDB_CHECK(IsValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  if (const Entry* existing = FindLocked(name)) {
    TDB_CHECK(existing->type == Type::kHistogram &&
              existing->owned_histogram != nullptr);
    return existing->owned_histogram.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->id = next_id_++;
  entry->name = name;
  entry->help = help;
  entry->type = Type::kHistogram;
  entry->owned_histogram = std::make_unique<LatencyHistogram>();
  LatencyHistogram* histogram = entry->owned_histogram.get();
  entry->histogram = histogram;
  entries_.push_back(std::move(entry));
  return histogram;
}

MetricRegistry::Registration MetricRegistry::AddViewLocked(Entry entry) {
  TDB_CHECK(IsValidMetricName(entry.name));
  TDB_CHECK(FindLocked(entry.name) == nullptr);
  entry.id = next_id_++;
  const uint64_t id = entry.id;
  entries_.push_back(std::make_unique<Entry>(std::move(entry)));
  return Registration(this, id);
}

MetricRegistry::Registration MetricRegistry::AddCounterView(
    const std::string& name, const std::string& help,
    const std::atomic<uint64_t>* value) {
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.type = Type::kCounter;
  entry.counter_value = [value] {
    return value->load(std::memory_order_relaxed);
  };
  std::lock_guard<std::mutex> lock(mu_);
  return AddViewLocked(std::move(entry));
}

MetricRegistry::Registration MetricRegistry::AddGaugeFn(
    const std::string& name, const std::string& help,
    std::function<double()> fn) {
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.type = Type::kGauge;
  entry.gauge_value = std::move(fn);
  std::lock_guard<std::mutex> lock(mu_);
  return AddViewLocked(std::move(entry));
}

MetricRegistry::Registration MetricRegistry::AddHistogramView(
    const std::string& name, const std::string& help,
    const LatencyHistogram* histogram) {
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.type = Type::kHistogram;
  entry.histogram = histogram;
  std::lock_guard<std::mutex> lock(mu_);
  return AddViewLocked(std::move(entry));
}

void MetricRegistry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const std::unique_ptr<Entry>& e) {
                                  return e->id == id;
                                }),
                 entries_.end());
}

void MetricRegistry::Registration::Release() {
  if (registry_ != nullptr) {
    registry_->Unregister(id_);
    registry_ = nullptr;
  }
}

std::string MetricRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& entry : entries_) sorted.push_back(entry.get());
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->name < b->name; });

  std::string out;
  for (const Entry* entry : sorted) {
    out += "# HELP " + entry->name + " " + EscapeHelp(entry->help) + "\n";
    switch (entry->type) {
      case Type::kCounter:
        out += "# TYPE " + entry->name + " counter\n";
        out += entry->name + " " +
               std::to_string(entry->counter_value()) + "\n";
        break;
      case Type::kGauge:
        out += "# TYPE " + entry->name + " gauge\n";
        out += entry->name + " " + FormatDouble(entry->gauge_value()) + "\n";
        break;
      case Type::kHistogram: {
        const LatencyHistogram& h = *entry->histogram;
        out += "# TYPE " + entry->name + " histogram\n";
        const int last = LastNonEmptyBucket(h);
        uint64_t cumulative = 0;
        for (int b = 0; b <= last; ++b) {
          cumulative += h.BucketCount(b);
          out += entry->name + "_bucket{le=\"" +
                 FormatDouble(
                     LatencyHistogram::BucketUpperEdgeSeconds(b)) +
                 "\"} " + std::to_string(cumulative) + "\n";
        }
        // Relaxed per-bucket loads can race concurrent recording; the
        // +Inf line re-reads the total so the invariant "+Inf equals
        // _count" holds within this scrape regardless.
        const uint64_t total = std::max(cumulative, h.TotalCount());
        out += entry->name + "_bucket{le=\"+Inf\"} " +
               std::to_string(total) + "\n";
        out += entry->name + "_sum " + FormatDouble(h.SumSeconds()) + "\n";
        out += entry->name + "_count " + std::to_string(total) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& entry : entries_) sorted.push_back(entry.get());
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->name < b->name; });

  std::string counters, gauges, histograms;
  for (const Entry* entry : sorted) {
    const std::string key = "\"" + EscapeJson(entry->name) + "\": ";
    switch (entry->type) {
      case Type::kCounter:
        if (!counters.empty()) counters += ", ";
        counters += key + std::to_string(entry->counter_value());
        break;
      case Type::kGauge:
        if (!gauges.empty()) gauges += ", ";
        gauges += key + FormatDouble(entry->gauge_value());
        break;
      case Type::kHistogram: {
        const LatencyHistogram& h = *entry->histogram;
        if (!histograms.empty()) histograms += ", ";
        std::string buckets;
        const int last = LastNonEmptyBucket(h);
        uint64_t cumulative = 0;
        for (int b = 0; b <= last; ++b) {
          cumulative += h.BucketCount(b);
          if (!buckets.empty()) buckets += ", ";
          buckets += "{\"le_seconds\": " +
                     FormatDouble(
                         LatencyHistogram::BucketUpperEdgeSeconds(b)) +
                     ", \"count\": " + std::to_string(cumulative) + "}";
        }
        histograms += key + "{\"count\": " +
                      std::to_string(std::max(cumulative, h.TotalCount())) +
                      ", \"sum_seconds\": " + FormatDouble(h.SumSeconds()) +
                      ", \"p50_seconds\": " +
                      FormatDouble(h.PercentileSeconds(0.50)) +
                      ", \"p95_seconds\": " +
                      FormatDouble(h.PercentileSeconds(0.95)) +
                      ", \"p99_seconds\": " +
                      FormatDouble(h.PercentileSeconds(0.99)) +
                      ", \"buckets\": [" + buckets + "]}";
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}\n";
}

}  // namespace tdb
