// Per-vertex scratch state with O(1) bulk reset.
//
// The top-down solver runs one bounded search per vertex; each search needs
// fresh per-vertex state (block values, visited marks, BFS distances).
// Clearing an n-sized array between the n searches would cost O(n^2) total,
// so state is versioned with an epoch counter instead: bumping the epoch
// invalidates every slot at once.
#ifndef TDB_UTIL_EPOCH_ARRAY_H_
#define TDB_UTIL_EPOCH_ARRAY_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace tdb {

/// A fixed-size array of T whose entries all revert to a default value when
/// NewEpoch() is called. Reads of stale slots return the default.
template <typename T>
class EpochArray {
 public:
  EpochArray() = default;

  /// Creates `size` slots, all holding `default_value`.
  explicit EpochArray(size_t size, T default_value = T())
      : default_(default_value),
        values_(size, default_value),
        epochs_(size, 0) {}

  size_t size() const { return values_.size(); }

  /// Grows to `size` slots (new slots hold the default); never shrinks, so
  /// a per-worker array can be reused across graphs of varying size.
  void Resize(size_t size) {
    if (size <= values_.size()) return;
    values_.resize(size, default_);
    // Epoch 0 is never current (the counter starts at 1 and the wrap
    // handler skips it), so fresh slots read as unset.
    epochs_.resize(size, 0u);
  }

  /// Invalidates every slot in O(1).
  void NewEpoch() {
    ++current_epoch_;
    if (current_epoch_ == 0) {
      // Epoch counter wrapped (after 2^32 epochs): hard reset.
      std::fill(epochs_.begin(), epochs_.end(), 0u);
      std::fill(values_.begin(), values_.end(), default_);
      current_epoch_ = 1;
    }
  }

  /// Returns the value at `i`, or the default if not set this epoch.
  T Get(size_t i) const {
    TDB_CHECK(i < values_.size());
    return epochs_[i] == current_epoch_ ? values_[i] : default_;
  }

  /// Sets the value at `i` for the current epoch.
  void Set(size_t i, T value) {
    TDB_CHECK(i < values_.size());
    values_[i] = value;
    epochs_[i] = current_epoch_;
  }

  /// True if slot `i` was written during the current epoch.
  bool IsSet(size_t i) const {
    TDB_CHECK(i < values_.size());
    return epochs_[i] == current_epoch_;
  }

  uint32_t current_epoch() const { return current_epoch_; }

  /// Test hook: jumps the epoch counter (e.g. next to the wrap boundary)
  /// without touching slot state, as 2^32 real NewEpoch calls would.
  void SetEpochForTesting(uint32_t epoch) { current_epoch_ = epoch; }

 private:
  T default_{};
  uint32_t current_epoch_ = 1;
  std::vector<T> values_;
  std::vector<uint32_t> epochs_;
};

}  // namespace tdb

#endif  // TDB_UTIL_EPOCH_ARRAY_H_
