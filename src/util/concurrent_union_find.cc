#include "util/concurrent_union_find.h"

#include "util/check.h"

namespace tdb {

ConcurrentUnionFind::ConcurrentUnionFind(VertexId n) : n_(n) {
  word_ = std::make_unique<std::atomic<uint64_t>[]>(n);
  workers_ = std::make_unique<std::atomic<uint64_t>[]>(n);
  ring_ = std::make_unique<std::atomic<uint64_t>[]>(n);
  member_ = std::make_unique<std::atomic<VertexId>[]>(n);
  cursor_ = std::make_unique<std::atomic<VertexId>[]>(n);
  for (VertexId v = 0; v < n; ++v) {
    word_[v].store(MakeWord(v, kStateLive, 0), std::memory_order_relaxed);
    workers_[v].store(0, std::memory_order_relaxed);
    // Singleton rings: v is its own work ring and member ring.
    ring_[v].store(MakeRing(v, false), std::memory_order_relaxed);
    member_[v].store(v, std::memory_order_relaxed);
    cursor_[v].store(v, std::memory_order_relaxed);
  }
}

VertexId ConcurrentUnionFind::Find(VertexId v) {
  while (true) {
    uint64_t wv = word_[v].load(std::memory_order_acquire);
    const VertexId p = Parent(wv);
    if (p == v) return v;
    uint64_t wp = word_[p].load(std::memory_order_acquire);
    const VertexId gp = Parent(wp);
    if (gp == p) return p;
    // Path halving: point v at its grandparent. v is a non-root and can
    // never become a root again, so the CAS only races other halvings —
    // losing it just means someone else shortened the path first.
    word_[v].compare_exchange_weak(wv, (wv & ~kParentMask) | gp,
                                   std::memory_order_relaxed);
    v = p;
  }
}

bool ConcurrentUnionFind::SameSet(VertexId a, VertexId b) {
  while (true) {
    const VertexId ra = Find(a);
    const VertexId rb = Find(b);
    if (ra == rb) return true;
    // Distinct roots prove "different sets" only if ra was still a root
    // AFTER rb was computed; otherwise a merge raced us — retry from the
    // roots (paths only get shorter).
    if (Parent(word_[ra].load(std::memory_order_seq_cst)) == ra) {
      return false;
    }
    a = ra;
    b = rb;
  }
}

ConcurrentUnionFind::Lock ConcurrentUnionFind::TryLockExact(VertexId r) {
  while (true) {
    uint64_t w = word_[r].load(std::memory_order_acquire);
    if (Parent(w) != r) return Lock::kMoved;
    switch (State(w)) {
      case kStateDead:
        return Lock::kDead;
      case kStateLocked:
        break;  // spin: the holder unlocks, dies, or merges r away
      default: {
        if (word_[r].compare_exchange_weak(w, MakeWord(r, kStateLocked,
                                                       Rank(w)),
                                           std::memory_order_acquire)) {
          return Lock::kLocked;
        }
        break;
      }
    }
  }
}

void ConcurrentUnionFind::UnlockRoot(VertexId r) {
  const uint64_t w = word_[r].load(std::memory_order_relaxed);
  TDB_CHECK(Parent(w) == r && State(w) == kStateLocked);
  word_[r].store(MakeWord(r, kStateLive, Rank(w)), std::memory_order_release);
}

bool ConcurrentUnionFind::Unite(VertexId a, VertexId b) {
  while (true) {
    const VertexId ra = Find(a);
    const VertexId rb = Find(b);
    if (ra == rb) return true;
    // Lock both roots in id order so concurrent Unites never deadlock.
    const VertexId lo = ra < rb ? ra : rb;
    const VertexId hi = ra < rb ? rb : ra;
    const Lock l1 = TryLockExact(lo);
    if (l1 == Lock::kDead) return false;
    if (l1 == Lock::kMoved) continue;
    const Lock l2 = TryLockExact(hi);
    if (l2 != Lock::kLocked) {
      UnlockRoot(lo);
      if (l2 == Lock::kDead) return false;
      continue;  // hi merged away; re-find both roots
    }

    const uint64_t rank_lo =
        Rank(word_[lo].load(std::memory_order_relaxed));
    const uint64_t rank_hi =
        Rank(word_[hi].load(std::memory_order_relaxed));
    VertexId winner, loser;
    uint64_t winner_rank;
    if (rank_lo < rank_hi) {
      winner = hi;
      loser = lo;
      winner_rank = rank_hi;
    } else {
      winner = lo;
      loser = hi;
      winner_rank = rank_lo + (rank_lo == rank_hi ? 1 : 0);
    }
    const uint64_t loser_rank = winner == lo ? rank_hi : rank_lo;

    // Splice the work rings at the two cursors: exchanging the two
    // successor pointers turns two disjoint cycles into one. Both
    // cursors keep pointing at linked elements of the merged ring.
    const VertexId cw = cursor_[winner].load(std::memory_order_relaxed);
    const VertexId cl = cursor_[loser].load(std::memory_order_relaxed);
    const uint64_t rw = ring_[cw].load(std::memory_order_relaxed);
    const uint64_t rl = ring_[cl].load(std::memory_order_relaxed);
    ring_[cw].store(MakeRing(RingNext(rl), RingRetired(rw)),
                    std::memory_order_relaxed);
    ring_[cl].store(MakeRing(RingNext(rw), RingRetired(rl)),
                    std::memory_order_relaxed);
    // Splice the member rings at the roots the same way.
    const VertexId mw = member_[winner].load(std::memory_order_relaxed);
    const VertexId ml = member_[loser].load(std::memory_order_relaxed);
    member_[winner].store(ml, std::memory_order_relaxed);
    member_[loser].store(mw, std::memory_order_relaxed);

    // Demote the loser (this is also its unlock): from here on every
    // Find lands on `winner`. seq_cst pairs with ClaimSet's re-anchor
    // check — a claim bit OR'd onto `loser` after the mask pickup below
    // is guaranteed to observe this store and chase the new root.
    word_[loser].store(MakeWord(winner, kStateLive, loser_rank),
                       std::memory_order_seq_cst);
    // Carry the loser's claim mask to the winner. The RMW (rather than a
    // plain load) reads the latest value in the modification order, so
    // it cannot miss a bit OR'd onto `loser` before the demotion above
    // became visible to that claimer.
    const uint64_t mask = workers_[loser].fetch_or(0, std::memory_order_seq_cst);
    workers_[winner].fetch_or(mask, std::memory_order_seq_cst);

    // Unlock the winner with its merged rank.
    word_[winner].store(MakeWord(winner, kStateLive, winner_rank),
                        std::memory_order_release);
    return true;
  }
}

ConcurrentUnionFind::Claim ConcurrentUnionFind::ClaimSet(VertexId v,
                                                         int worker) {
  TDB_CHECK(worker >= 0 && worker < kMaxWorkers);
  const uint64_t bit = 1ull << worker;
  VertexId r = Find(v);
  // Pre-check: if the bit already rests on the CURRENT root, an earlier
  // ClaimSet by this worker claimed (an ancestor of) this set — report
  // kFound without OR-ing again. The root recheck after the mask load
  // rejects stale masks read off a just-demoted root.
  while (true) {
    const uint64_t w = word_[r].load(std::memory_order_seq_cst);
    if (Parent(w) != r) {
      r = Find(r);
      continue;
    }
    if (State(w) == kStateDead) return Claim::kDead;
    const uint64_t mask = workers_[r].load(std::memory_order_seq_cst);
    if ((mask & bit) != 0) {
      if (Parent(word_[r].load(std::memory_order_seq_cst)) == r) {
        return Claim::kFound;
      }
      r = Find(r);
      continue;
    }
    break;
  }
  // The FIRST fetch_or classifies the claim; later re-anchor ORs never
  // reclassify (a re-anchored own bit must not read as a new kFound).
  const uint64_t prev = workers_[r].fetch_or(bit, std::memory_order_seq_cst);
  const Claim result = (prev & bit) != 0 ? Claim::kFound : Claim::kSuccess;
  // Re-anchor: if r was demoted concurrently, Unite may have carried the
  // mask before our OR landed — chase the current root and re-OR until
  // the bit provably rests on a root (the seq_cst pairing with Unite's
  // demotion store makes this loop terminate with the bit carried).
  while (Parent(word_[r].load(std::memory_order_seq_cst)) != r) {
    r = Find(r);
    workers_[r].fetch_or(bit, std::memory_order_seq_cst);
  }
  return result;
}

bool ConcurrentUnionFind::IsDead(VertexId v) {
  while (true) {
    const VertexId r = Find(v);
    const uint64_t w = word_[r].load(std::memory_order_acquire);
    if (Parent(w) != r) continue;  // demoted between Find and load
    return State(w) == kStateDead;
  }
}

ConcurrentUnionFind::Pick ConcurrentUnionFind::PickActive(
    VertexId v, VertexId* picked, std::vector<VertexId>* members) {
  while (true) {
    const VertexId r = Find(v);
    const Lock lock = TryLockExact(r);
    if (lock == Lock::kMoved) continue;
    if (lock == Lock::kDead) return Pick::kDead;

    // Walk the work ring from the cursor for the first non-retired
    // element. The walk is safe: all ring mutations happen under this
    // root's lock.
    const VertexId start = cursor_[r].load(std::memory_order_relaxed);
    VertexId cur = start;
    VertexId found = kInvalidVertex;
    do {
      const uint64_t ring = ring_[cur].load(std::memory_order_relaxed);
      if (!RingRetired(ring)) {
        found = cur;
        break;
      }
      cur = RingNext(ring);
    } while (cur != start);

    if (found == kInvalidVertex) {
      // Every element retired: the set dies, HERE, exactly once (the
      // LIVE -> DEAD transition happens under the lock we hold).
      members->clear();
      VertexId m = r;
      do {
        members->push_back(m);
        m = member_[m].load(std::memory_order_relaxed);
      } while (m != r);
      const uint64_t w = word_[r].load(std::memory_order_relaxed);
      // The DEAD store doubles as the unlock.
      word_[r].store(MakeWord(r, kStateDead, Rank(w)),
                     std::memory_order_release);
      return Pick::kDied;
    }

    if (found != start) {
      // Shortcut the retired run [start, found): start stays linked (its
      // predecessor still points at it), the skipped tombstones drop out
      // of the ring for good. Never touches `found` or anything after
      // it, so the cursor invariant (always linked) holds.
      const uint64_t rs = ring_[start].load(std::memory_order_relaxed);
      ring_[start].store(MakeRing(found, RingRetired(rs)),
                         std::memory_order_relaxed);
    }
    // Rotate the cursor past `found` so concurrent pickers spread out.
    cursor_[r].store(RingNext(ring_[found].load(std::memory_order_relaxed)),
                     std::memory_order_relaxed);
    UnlockRoot(r);
    *picked = found;
    return Pick::kPicked;
  }
}

void ConcurrentUnionFind::Retire(VertexId v) {
  while (true) {
    const VertexId r = Find(v);
    const Lock lock = TryLockExact(r);
    if (lock == Lock::kMoved) continue;
    if (lock == Lock::kDead) return;
    const uint64_t ring = ring_[v].load(std::memory_order_relaxed);
    ring_[v].store(MakeRing(RingNext(ring), true), std::memory_order_relaxed);
    UnlockRoot(r);
    return;
  }
}

}  // namespace tdb
