// Epoch-numbered single-writer/many-reader pointer publication.
//
// The serving layer's read path (CheckAdmission) must observe a coherent
// (snapshot, cover) pair while one writer publishes new states at batch
// granularity. EpochPtr couples a shared_ptr to a monotonically
// increasing epoch so readers pin both atomically: Load() copies the
// pointer and its epoch under a shared lock held only for the refcount
// bump (nanoseconds — readers never wait on each other, and a writer
// waits only for in-flight pointer copies, never for the searches readers
// run on the pinned state afterwards). A mutex-free std::atomic
// <shared_ptr> would not buy anything here: libstdc++'s implementation is
// lock-based too, and the (pointer, epoch) pair needs to be read together
// anyway.
#ifndef TDB_UTIL_EPOCH_PTR_H_
#define TDB_UTIL_EPOCH_PTR_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <utility>

namespace tdb {

/// Versioned shared pointer. Thread-safe: any number of Load()ers
/// concurrent with Store()s; epochs increase by exactly 1 per Store.
/// A Load() is atomic with respect to publication — it returns a
/// (pointer, epoch) pair from ONE Store, never a mix. Determinism
/// follows from the single-writer discipline of the caller: published
/// states are immutable, so everything computed from a Pinned state is
/// a pure function of its epoch (SeedEpoch lets recovery republish at
/// the original epoch so that function is crash-stable too).
template <typename T>
class EpochPtr {
 public:
  /// A pinned state: the pointer plus the epoch it was published at.
  /// Holding `state` keeps the object alive no matter how many newer
  /// epochs are published (or compacted) meanwhile.
  struct Pinned {
    std::shared_ptr<const T> state;
    uint64_t epoch = 0;
  };

  /// Pins the current state. Before the first Store the pointer is null
  /// and the epoch 0.
  Pinned Load() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return Pinned{ptr_, epoch_};
  }

  /// Publishes `next` and returns its (new) epoch.
  uint64_t Store(std::shared_ptr<const T> next) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    ptr_ = std::move(next);
    return ++epoch_;
  }

  /// Seeds the epoch counter so the next Store publishes at `epoch` + 1.
  /// Recovery hook: a restored service republishes its snapshot at the
  /// epoch the state originally held. Call before the first Store.
  void SeedEpoch(uint64_t epoch) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    epoch_ = epoch;
  }

  /// Epoch of the most recent Store (0 before any).
  uint64_t epoch() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return epoch_;
  }

 private:
  mutable std::shared_mutex mu_;
  std::shared_ptr<const T> ptr_;
  uint64_t epoch_ = 0;
};

}  // namespace tdb

#endif  // TDB_UTIL_EPOCH_PTR_H_
