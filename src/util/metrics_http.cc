#include "util/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "util/metrics.h"

namespace tdb {

namespace {

/// Writes the whole buffer, riding out EINTR and short sends. A peer
/// that hangs up mid-response is its own problem: MSG_NOSIGNAL keeps
/// the failure a return code instead of a SIGPIPE.
void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

std::string HttpResponse(const char* status, const char* content_type,
                         const std::string& body) {
  return std::string("HTTP/1.0 ") + status +
         "\r\nContent-Type: " + content_type +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n" + body;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(MetricRegistry* registry, int port)
    : registry_(registry), requested_port_(port) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Status MetricsHttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("metrics listener: cannot create socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(requested_port_));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("metrics listener: cannot bind 127.0.0.1:" +
                           std::to_string(requested_port_));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) == 0) {
    bound_port_ = ntohs(addr.sin_port);
  }
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!thread_.joinable()) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Unblocks the accept; the loop observes stopping_ and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsHttpServer::Serve() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      continue;  // transient (EINTR, aborted connection)
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::HandleConnection(int fd) {
  // Only the request line matters; 4 KB is plenty for any scraper.
  char buf[4096];
  const ssize_t n = ::recv(fd, buf, sizeof buf - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  const char* line_end = std::strstr(buf, "\r\n");
  const std::string request_line(
      buf, line_end != nullptr ? static_cast<size_t>(line_end - buf)
                               : static_cast<size_t>(n));
  if (request_line.rfind("GET ", 0) != 0) {
    SendAll(fd, HttpResponse("405 Method Not Allowed", "text/plain",
                             "only GET is served\n"));
    return;
  }
  const size_t path_end = request_line.find(' ', 4);
  const std::string path = request_line.substr(
      4, path_end == std::string::npos ? std::string::npos : path_end - 4);
  if (path == "/metrics") {
    SendAll(fd, HttpResponse("200 OK",
                             "text/plain; version=0.0.4; charset=utf-8",
                             registry_->RenderPrometheus()));
  } else if (path == "/metrics.json") {
    SendAll(fd, HttpResponse("200 OK", "application/json",
                             registry_->RenderJson()));
  } else {
    SendAll(fd, HttpResponse("404 Not Found", "text/plain",
                             "try /metrics or /metrics.json\n"));
  }
}

}  // namespace tdb
