// Deterministic pseudo-random number generation.
//
// All randomized components in the library (generators, randomized vertex
// orders) use this engine so that every experiment is reproducible from a
// 64-bit seed, independent of the standard library implementation.
#ifndef TDB_UTIL_RNG_H_
#define TDB_UTIL_RNG_H_

#include <cstdint>

namespace tdb {

/// xoshiro256** seeded via SplitMix64. Not cryptographic; fast and
/// statistically solid for simulation workloads.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with equal seeds produce
  /// identical streams on every platform.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, bound). `bound` must be positive. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability `p` (clamped to [0, 1]).
  bool NextBool(double p);

  /// Zipf-distributed value in [0, n) with exponent `theta` (> 0).
  /// Uses inverse-CDF over a precomputation-free rejection scheme suitable
  /// for one-off sampling; for bulk sampling prefer ZipfSampler.
  uint64_t NextZipf(uint64_t n, double theta);

 private:
  uint64_t state_[4];
};

/// Precomputed-alias-free Zipf sampler over [0, n) using the method of
/// Gray et al. ("Quickly generating billion-record synthetic databases"),
/// the standard generator for skewed database benchmark keys.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `theta` in (0, 1) is the usual Zipfian skew.
  ZipfSampler(uint64_t n, double theta);

  /// Draws one sample in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace tdb

#endif  // TDB_UTIL_RNG_H_
