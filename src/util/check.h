// Hard invariant checks. These fire in every build type: a failed check is a
// programming error inside the library, never a recoverable condition.
#ifndef TDB_UTIL_CHECK_H_
#define TDB_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a diagnostic if `cond` is false. Always enabled.
#define TDB_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "TDB_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

/// Like TDB_CHECK but with a printf-style explanation.
#define TDB_CHECK_MSG(cond, ...)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "TDB_CHECK failed at %s:%d: %s: ", __FILE__,  \
                   __LINE__, #cond);                                     \
      std::fprintf(stderr, __VA_ARGS__);                                 \
      std::fprintf(stderr, "\n");                                        \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#endif  // TDB_UTIL_CHECK_H_
