// Process-wide metric registry: named counters, gauges and log2-bucketed
// latency histograms with Prometheus text exposition and a JSON dump.
//
// The split that keeps hot paths hot: *registration* (startup, rare)
// takes a mutex and hands back a stable pointer; *recording* (per
// event, concurrent) is one relaxed atomic RMW on that pointer — no
// locks, no lookups, no allocation. Exporters walk the registry under
// the registration mutex, reading each instrument with relaxed loads,
// so a scrape never blocks a recorder.
//
// Two registration shapes:
//   * owned instruments (AddCounter/AddGauge/AddHistogram): the registry
//     allocates and keeps them alive forever — the "register at startup"
//     shape for process-lifetime metrics;
//   * views (AddCounterView/AddGaugeFn/AddHistogramView): the caller
//     owns the storage (e.g. the atomics already inside ServiceStats)
//     and the returned RAII Registration unbinds it on destruction, so
//     shorter-lived objects can export without double-counting or
//     dangling.
#ifndef TDB_UTIL_METRICS_H_
#define TDB_UTIL_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tdb {

/// Monotonic counter; wait-free relaxed recording.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins double gauge; wait-free relaxed recording.
class Gauge {
 public:
  void Set(double value) {
    bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
  }
  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<uint64_t> bits_{std::bit_cast<uint64_t>(0.0)};
};

/// Lock-free log2-bucketed latency histogram over nanoseconds.
///
/// Bucket b (b >= 1) holds samples whose nanosecond tick count has its
/// highest set bit at b - 1, i.e. ticks in [2^(b-1), 2^b); bucket 0 is
/// the clamp bucket for garbage input (negative, NaN, sub-nanosecond).
/// Each reported percentile is the upper edge of its bucket — within 2x
/// of the true value, plenty for a p50/p95/p99 serving dashboard.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// Records one sample. Thread-safe, wait-free. Negative, NaN and
  /// sub-nanosecond inputs (possible under clock adjustment) clamp into
  /// bucket 0 with zero sum contribution instead of hitting the
  /// undefined float-to-integer cast.
  void Record(double seconds) {
    const double ns = seconds * 1e9;
    uint64_t ticks = 0;
    int bucket = 0;
    if (ns >= 1.0) {  // false for NaN and negatives
      // 2^63 caps the cast: anything at or beyond it saturates into the
      // last bucket rather than overflowing the uint64 conversion.
      constexpr double kCastCap = 9223372036854775808.0;  // 2^63
      ticks = ns >= kCastCap ? (uint64_t{1} << 63)
                             : static_cast<uint64_t>(ns);
      bucket = 64 - std::countl_zero(ticks);
      if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
    }
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ticks, std::memory_order_relaxed);
  }

  uint64_t TotalCount() const {
    uint64_t total = 0;
    for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
    return total;
  }

  /// Sum of all recorded samples in seconds (clamped samples add 0).
  double SumSeconds() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }

  uint64_t BucketCount(int bucket) const {
    return counts_[bucket].load(std::memory_order_relaxed);
  }

  /// Upper edge of `bucket` in seconds: 2^bucket nanoseconds.
  static double BucketUpperEdgeSeconds(int bucket) {
    return static_cast<double>(uint64_t{1} << bucket) * 1e-9;
  }

  /// Approximate p-th percentile (p in [0, 1]) in seconds: the upper edge
  /// of the bucket containing that rank, or 0 with no samples.
  double PercentileSeconds(double p) const {
    const uint64_t total = TotalCount();
    if (total == 0) return 0.0;
    uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
    if (rank >= total) rank = total - 1;
    uint64_t seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      seen += counts_[b].load(std::memory_order_relaxed);
      if (seen > rank) return BucketUpperEdgeSeconds(b);
    }
    return 0.0;
  }

 private:
  std::atomic<uint64_t> counts_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_ns_{0};
};

/// Named instrument directory with two exporters. Thread-safe; see the
/// file comment for the registration-vs-recording cost split.
class MetricRegistry {
 public:
  /// RAII unbind handle for view registrations. Destroying it (or the
  /// registry outliving it) removes the entry; the default-constructed
  /// handle is inert.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept
        : registry_(other.registry_), id_(other.id_) {
      other.registry_ = nullptr;
    }
    Registration& operator=(Registration&& other) noexcept {
      if (this != &other) {
        Release();
        registry_ = other.registry_;
        id_ = other.id_;
        other.registry_ = nullptr;
      }
      return *this;
    }
    ~Registration() { Release(); }
    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;

   private:
    friend class MetricRegistry;
    Registration(MetricRegistry* registry, uint64_t id)
        : registry_(registry), id_(id) {}
    void Release();

    MetricRegistry* registry_ = nullptr;
    uint64_t id_ = 0;
  };

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry (what tdb_serve exports).
  static MetricRegistry& Global();

  /// Owned instruments: get-or-create by name (a second call with the
  /// same name returns the same instrument; a type mismatch aborts).
  /// The returned pointer is valid for the registry's lifetime. Names
  /// must match Prometheus legality ([a-zA-Z_:][a-zA-Z0-9_:]*).
  Counter* AddCounter(const std::string& name, const std::string& help);
  Gauge* AddGauge(const std::string& name, const std::string& help);
  LatencyHistogram* AddHistogram(const std::string& name,
                                 const std::string& help);

  /// View registrations: the caller keeps ownership of the storage,
  /// which must outlive the returned Registration. The name must not
  /// already be registered.
  [[nodiscard]] Registration AddCounterView(
      const std::string& name, const std::string& help,
      const std::atomic<uint64_t>* value);
  [[nodiscard]] Registration AddGaugeFn(const std::string& name,
                                        const std::string& help,
                                        std::function<double()> fn);
  [[nodiscard]] Registration AddHistogramView(
      const std::string& name, const std::string& help,
      const LatencyHistogram* histogram);

  /// Prometheus text exposition format 0.0.4: HELP/TYPE per family,
  /// cumulative le-labelled buckets + _sum/_count for histograms.
  /// Families are emitted in name order.
  std::string RenderPrometheus() const;

  /// JSON dump: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum_seconds, p50/p95/p99_seconds, buckets}}}.
  std::string RenderJson() const;

  static bool IsValidMetricName(const std::string& name);

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Entry {
    uint64_t id = 0;
    std::string name;
    std::string help;
    Type type = Type::kCounter;
    /// Readers for the three types; exactly one is set.
    std::function<uint64_t()> counter_value;
    std::function<double()> gauge_value;
    const LatencyHistogram* histogram = nullptr;
    /// Keep-alive storage for owned instruments (null for views).
    std::unique_ptr<Counter> owned_counter;
    std::unique_ptr<Gauge> owned_gauge;
    std::unique_ptr<LatencyHistogram> owned_histogram;
  };

  const Entry* FindLocked(const std::string& name) const;
  Registration AddViewLocked(Entry entry);
  void Unregister(uint64_t id);

  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace tdb

#endif  // TDB_UTIL_METRICS_H_
