// Work-stealing thread pool for the SCC-partitioned solver engine.
//
// Design: per-worker deques guarded by short-held mutexes. Submissions are
// distributed round-robin; a worker drains its own deque front-to-back
// (FIFO: big components are submitted first, so early tasks are the long
// ones) and steals from the back of a random victim when its own deque is
// empty. Stealing keeps all workers busy when component sizes are skewed —
// the common case, since real graphs have one giant SCC plus a long tail.
//
// Tasks receive their worker's index so callers can maintain per-worker
// scratch (e.g. one SearchContext per worker) without locks. Tasks must
// not throw.
#ifndef TDB_UTIL_THREAD_POOL_H_
#define TDB_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tdb {

/// Fixed-size pool. Create, Submit any number of tasks, Wait, repeat;
/// the destructor drains outstanding work before joining.
///
/// Thread-safety: Submit and Wait may be called from any thread,
/// including from inside a running task; Wait is pool-global (it waits
/// for ALL in-flight work, not just the caller's). Determinism: the
/// pool itself guarantees nothing about execution order — callers that
/// need reproducible results must make task outputs order-independent
/// (disjoint slots, or ParallelGather's chunk-ordered concatenation)
/// and serialize commits elsewhere; every deterministic sweep in the
/// engine and the condenser is built that way on top of this pool.
class ThreadPool {
 public:
  /// A task plus the index of the worker that runs it,
  /// in [0, num_threads).
  using Task = std::function<void(int worker)>;

  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe, including from inside a task.
  void Submit(Task task);

  /// Blocks until every submitted task has finished running.
  void Wait();

  /// Runs body(index, worker) for every index in [0, count) across the
  /// pool and blocks until all iterations finish. The barrier is Wait(),
  /// which is pool-global, so do not interleave ParallelFor with
  /// independently submitted tasks. This is the batch primitive behind
  /// the engine's intra-component speculative candidate probing.
  void ParallelFor(size_t count,
                   const std::function<void(size_t index, int worker)>& body);

  /// Chunked variant for flat scans: splits [0, count) into at most
  /// ceil(count / grain) contiguous chunks (capped at a few per worker,
  /// so task overhead stays amortized) and runs body(begin, end, worker)
  /// per chunk. Even splitting can make individual chunks somewhat
  /// smaller than `grain` — it bounds the chunk COUNT, not a minimum
  /// size. Chunk boundaries depend only on count, grain and the pool
  /// size — not on scheduling. Same pool-global Wait() barrier as
  /// ParallelFor. This is the frontier primitive behind the parallel SCC
  /// condenser's trim and BFS sweeps.
  void ParallelForChunks(
      size_t count, size_t grain,
      const std::function<void(size_t begin, size_t end, int worker)>& body);

  /// Number of chunks ParallelForChunks / ParallelGather split `count`
  /// indices into (pure; exposed so callers can pre-size side tables).
  size_t NumChunks(size_t count, size_t grain) const;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency with a floor of 1.
  static int HardwareThreads();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  /// Pops from the worker's own queue, or steals; empty on failure.
  Task NextTask(int worker);
  void WorkerLoop(int worker);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  uint64_t queued_ = 0;      // tasks sitting in some deque
  uint64_t in_flight_ = 0;   // queued + currently running
  uint64_t next_queue_ = 0;  // round-robin submission cursor
  bool stop_ = false;
};

/// Null-pool-safe fan-out: runs body(index, worker) for every index in
/// [0, count) — across `pool` when one is given, inline in index order
/// (worker 0) when `pool` is null or there is only one index. The same
/// pool-global Wait() barrier as ParallelFor applies. This is the
/// orchestration primitive of the sharded router: per-shard submits,
/// recovery re-routing and boundary-summary row builds all fan out
/// through it, and a router configured for sequential ingest simply
/// passes a null pool.
inline void FanOut(ThreadPool* pool, size_t count,
                   const std::function<void(size_t index, int worker)>& body) {
  if (pool == nullptr || count <= 1) {
    for (size_t i = 0; i < count; ++i) body(i, 0);
    return;
  }
  pool->ParallelFor(count, body);
}

/// Parallel gather with deterministic output order: runs
/// body(begin, end, &buffer, worker) over the same chunk decomposition as
/// ParallelForChunks — each chunk appends to its own buffer — and then
/// concatenates the buffers in chunk index order. When every chunk's
/// output depends only on its input slice, the result is byte-identical
/// to a sequential left-to-right run, regardless of scheduling or pool
/// size. With a null pool (or a gather no bigger than one grain) the body
/// runs inline on the calling thread with `out` as its buffer.
///
/// This is the per-worker-buffer frontier primitive of the parallel SCC
/// condenser: BFS levels and partition splits gather into chunk-local
/// buffers and concatenate deterministically.
template <typename T, typename Body>
void ParallelGather(ThreadPool* pool, size_t count, size_t grain,
                    std::vector<T>* out, Body&& body) {
  if (pool == nullptr || count <= std::max<size_t>(grain, 1)) {
    if (count > 0) body(size_t{0}, count, out, /*worker=*/0);
    return;
  }
  const size_t chunks = pool->NumChunks(count, grain);
  const size_t step = (count + chunks - 1) / chunks;
  std::vector<std::vector<T>> buffers((count + step - 1) / step);
  pool->ParallelForChunks(count, grain, [&](size_t begin, size_t end,
                                            int worker) {
    body(begin, end, &buffers[begin / step], worker);
  });
  size_t total = out->size();
  for (const std::vector<T>& b : buffers) total += b.size();
  out->reserve(total);
  for (std::vector<T>& b : buffers) {
    out->insert(out->end(), b.begin(), b.end());
  }
}

}  // namespace tdb

#endif  // TDB_UTIL_THREAD_POOL_H_
