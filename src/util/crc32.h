// CRC-32C (Castagnoli) for framing persistent records.
//
// The persistence layer (service snapshots and the write-ahead journal)
// frames every payload with a checksum so a torn write, a truncated file
// or a flipped bit is detected at open instead of silently replaying
// garbage into the recovered transversal. CRC-32C is the storage-stack
// standard (iSCSI, ext4, LevelDB/RocksDB logs); this is the plain
// table-driven software implementation — persistence I/O is dominated by
// the write itself, not the checksum.
#ifndef TDB_UTIL_CRC32_H_
#define TDB_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace tdb {

namespace internal {

/// Byte-at-a-time CRC-32C table (reflected polynomial 0x82F63B78),
/// generated at static-initialization time.
inline const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) != 0 ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace internal

/// Incremental CRC-32C accumulator: feed payload chunks in write order,
/// read `value()` at the end. A default-constructed accumulator of zero
/// bytes has value 0x00000000 ^ final xor — i.e. the empty-string CRC —
/// so writers and readers agree without special-casing empty payloads.
class Crc32 {
 public:
  void Update(const void* data, size_t len) {
    const auto& table = internal::Crc32cTable();
    const unsigned char* p = static_cast<const unsigned char*>(data);
    uint32_t crc = state_;
    for (size_t i = 0; i < len; ++i) {
      crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFFu];
    }
    state_ = crc;
  }

  /// Finalized checksum of everything fed so far (does not reset).
  uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  void Reset() { state_ = 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience.
inline uint32_t Crc32cOf(const void* data, size_t len) {
  Crc32 crc;
  crc.Update(data, len);
  return crc.value();
}

}  // namespace tdb

#endif  // TDB_UTIL_CRC32_H_
