// Lightweight error-reporting type in the RocksDB style: functions that can
// fail for environmental reasons (I/O, resource limits, bad input) return a
// Status instead of throwing. Internal invariant violations use TDB_CHECK.
#ifndef TDB_UTIL_STATUS_H_
#define TDB_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace tdb {

/// Outcome of a fallible operation.
///
/// A Status is either OK (the default) or carries an error code and a
/// human-readable message. It is cheap to copy in the OK case.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kResourceExhausted,
    kTimedOut,
    kInternal,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  /// Returns "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Returns early from the enclosing function if `expr` is not OK.
#define TDB_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::tdb::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace tdb

#endif  // TDB_UTIL_STATUS_H_
