// Concurrent union-find for on-the-fly SCC decomposition (Bloemen et
// al., "Multi-core on-the-fly SCC decomposition" — the structure behind
// ltsmin's ufscc/renault-unionfind).
//
// Each element starts as a singleton set. Worker threads merge sets as
// they discover cycles, cooperate on exploring a set through a shared
// cyclic work ring, and retire a whole set exactly once when no
// unexplored element remains. The state machine per set is
// LIVE -> DEAD (with a transient LOCKED state guarding mutations); per
// element the work ring holds an active/retired bit.
//
// Concurrency contract:
//   * Find / SameSet / IsDead / ClaimSet are lock-free: CAS path-halving
//     finds plus fetch_or claim masks; they never block behind another
//     thread's critical section.
//   * Unite / PickActive / Retire serialize per SET through a spin bit
//     packed into the root's node word (two bits for Unite, ordered by
//     root id, so they never deadlock). Operations on different sets
//     never contend.
//   * Every mutation of a set's rings happens while its root is LOCKED,
//     and the unique LIVE -> DEAD transition happens under the same
//     bit, so exactly one caller of PickActive observes the death and
//     receives the member list.
//
// Determinism: none of the operations are deterministic under
// concurrency (set representatives, claim orders and member orderings
// all depend on scheduling) — callers that need deterministic output
// must canonicalize, which is exactly what graph/scc.cc's
// FinalizeCanonical does with the SCC labels derived from this
// structure.
#ifndef TDB_UTIL_CONCURRENT_UNION_FIND_H_
#define TDB_UTIL_CONCURRENT_UNION_FIND_H_

#include <atomic>
#include <memory>
#include <vector>

#include "graph/types.h"

namespace tdb {

/// Union-find over the fixed universe [0, n) with per-set worker claim
/// masks and cooperative work rings. See the file comment for the
/// concurrency contract.
class ConcurrentUnionFind {
 public:
  /// Claim masks are one bit per worker in a 64-bit word.
  static constexpr int kMaxWorkers = 64;

  /// Outcome of ClaimSet(v, worker).
  enum class Claim : uint8_t {
    /// The worker's bit was newly set on v's set: first contact.
    kSuccess,
    /// The worker had already claimed this set through an earlier call
    /// (possibly via a different element, possibly merged since): for
    /// the SCC search this signals a cycle back into its own stack.
    kFound,
    /// v's set is dead (fully explored and retired).
    kDead,
  };

  /// Outcome of PickActive(v, ...).
  enum class Pick : uint8_t {
    /// *picked holds an active element of v's set to work on.
    kPicked,
    /// No active element remained: THIS call performed the unique
    /// LIVE -> DEAD transition and filled `members` with every element
    /// of the set (unsorted). The caller owns reporting the set.
    kDied,
    /// The set was already dead (another caller reported it).
    kDead,
  };

  explicit ConcurrentUnionFind(VertexId n);

  VertexId size() const { return n_; }

  /// Representative of v's set. Lock-free; performs CAS path halving.
  VertexId Find(VertexId v);

  /// True iff a and b are currently in the same set. Exact at some
  /// linearization point during the call: sets only ever merge, so a
  /// `true` is stable forever while a `false` can be outdated by a
  /// concurrent Unite.
  bool SameSet(VertexId a, VertexId b);

  /// Merges the sets of a and b: claim masks OR together and the work /
  /// member rings splice in O(1). Returns true when the sets are merged
  /// (or already were); false iff either set is dead — dead sets are
  /// immutable and never merge.
  bool Unite(VertexId a, VertexId b);

  /// Sets `worker`'s claim bit on v's set (worker in [0, kMaxWorkers)).
  /// The bit survives merges: Unite carries claim masks onto the
  /// surviving root, so kFound means "some earlier ClaimSet by this
  /// worker hit a set that is now this set".
  Claim ClaimSet(VertexId v, int worker);

  /// True iff v's set is dead. Stable once true.
  bool IsDead(VertexId v);

  /// Returns an active (not yet retired) element of v's set, rotating a
  /// shared cursor so concurrent callers spread over distinct elements.
  /// When none remains, performs the set's unique LIVE -> DEAD
  /// transition (see Pick::kDied). `members` is only written on kDied.
  Pick PickActive(VertexId v, VertexId* picked,
                  std::vector<VertexId>* members);

  /// Marks v retired (fully processed). Callers must have finished all
  /// work attached to v beforehand: once every element of a set is
  /// retired, any PickActive on the set declares it dead. No-op when
  /// the set is already dead.
  void Retire(VertexId v);

 private:
  // Node word: parent in bits [0, 32), set state in [32, 34), union
  // rank in [34, 40). State is meaningful on roots only.
  static constexpr uint64_t kStateLive = 0;
  static constexpr uint64_t kStateLocked = 1;
  static constexpr uint64_t kStateDead = 2;
  static constexpr uint64_t kParentMask = 0xffffffffull;
  static constexpr int kStateShift = 32;
  static constexpr int kRankShift = 34;
  // Work-ring word: successor element in bits [0, 32), retired flag in
  // bit 32. Mutated only while the owning root is LOCKED.
  static constexpr uint64_t kRetiredBit = 1ull << 32;

  static VertexId Parent(uint64_t word) {
    return static_cast<VertexId>(word & kParentMask);
  }
  static uint64_t State(uint64_t word) { return (word >> kStateShift) & 3; }
  static uint64_t Rank(uint64_t word) { return (word >> kRankShift) & 0x3f; }
  static uint64_t MakeWord(VertexId parent, uint64_t state, uint64_t rank) {
    return static_cast<uint64_t>(parent) | (state << kStateShift) |
           (rank << kRankShift);
  }
  static VertexId RingNext(uint64_t ring) {
    return static_cast<VertexId>(ring & kParentMask);
  }
  static bool RingRetired(uint64_t ring) {
    return (ring & kRetiredBit) != 0;
  }
  static uint64_t MakeRing(VertexId next, bool retired) {
    return static_cast<uint64_t>(next) | (retired ? kRetiredBit : 0);
  }

  enum class Lock : uint8_t { kLocked, kMoved, kDead };

  /// Spins until r is locked by this thread, or reports that r stopped
  /// being a root (kMoved) or its set is dead (kDead).
  Lock TryLockExact(VertexId r);
  void UnlockRoot(VertexId r);

  VertexId n_ = 0;
  /// parent | state | rank, one per element (see MakeWord).
  std::unique_ptr<std::atomic<uint64_t>[]> word_;
  /// Worker claim masks; authoritative on roots, carried on Unite.
  std::unique_ptr<std::atomic<uint64_t>[]> workers_;
  /// Cyclic work ring: next element | retired bit (see MakeRing).
  std::unique_ptr<std::atomic<uint64_t>[]> ring_;
  /// Cyclic member ring of every element ever merged into the set;
  /// never unlinked, walked once at death to extract the member list.
  std::unique_ptr<std::atomic<VertexId>[]> member_;
  /// Per-root pick cursor into the work ring (meaningful on live
  /// roots; always an element still linked into the ring).
  std::unique_ptr<std::atomic<VertexId>[]> cursor_;
};

}  // namespace tdb

#endif  // TDB_UTIL_CONCURRENT_UNION_FIND_H_
