// Wall-clock measurement and cooperative deadlines.
//
// Long-running solvers poll a Deadline at coarse intervals so that the bench
// harness can reproduce the paper's "INF" entries (runs that exceed the time
// budget) without killing the process.
#ifndef TDB_UTIL_TIMER_H_
#define TDB_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace tdb {

/// Measures elapsed wall-clock time from construction or the last Reset().
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction/Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction/Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock budget. A default-constructed Deadline never expires.
///
/// Expiry checks are amortized: Expired() only consults the clock every
/// `check_interval` calls, so it is safe to poll from inner search loops.
class Deadline {
 public:
  /// Unlimited deadline.
  Deadline() : unlimited_(true) {}

  /// Expires `seconds` from now. Non-positive budgets expire immediately.
  static Deadline AfterSeconds(double seconds) {
    Deadline d;
    d.unlimited_ = false;
    d.expiry_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    return d;
  }

  bool unlimited() const { return unlimited_; }

  /// True once the budget is exhausted. Cheap to call in tight loops.
  bool Expired() {
    if (unlimited_) return false;
    if (expired_) return true;
    if (++calls_since_check_ < kCheckInterval) return false;
    calls_since_check_ = 0;
    expired_ = Clock::now() >= expiry_;
    return expired_;
  }

  /// Forces an immediate clock check (used at loop boundaries).
  bool ExpiredNow() {
    if (unlimited_) return false;
    if (expired_) return true;
    calls_since_check_ = 0;
    expired_ = Clock::now() >= expiry_;
    return expired_;
  }

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr uint32_t kCheckInterval = 1024;

  bool unlimited_ = false;
  bool expired_ = false;
  uint32_t calls_since_check_ = 0;
  Clock::time_point expiry_{};
};

}  // namespace tdb

#endif  // TDB_UTIL_TIMER_H_
