// Minimal blocking HTTP listener exporting a MetricRegistry.
//
// Serves exactly two endpoints over HTTP/1.0-style request/response on
// 127.0.0.1 (loopback only — this is a scrape port, not a public API):
//
//   GET /metrics        Prometheus text exposition (0.0.4)
//   GET /metrics.json   the registry's JSON dump
//
// One accept loop on one background thread, one connection at a time:
// a scrape renders the registry (which never blocks recorders) and the
// response is a few KB, so prompt sequential service is plenty for a
// monitoring endpoint. Start() binds (port 0 = kernel-assigned; read it
// back from port()); Stop()/destruction closes the socket and joins.
#ifndef TDB_UTIL_METRICS_HTTP_H_
#define TDB_UTIL_METRICS_HTTP_H_

#include <atomic>
#include <string>
#include <thread>

#include "util/status.h"

namespace tdb {

class MetricRegistry;

class MetricsHttpServer {
 public:
  /// Serves `registry` (borrowed; must outlive the server) on loopback
  /// `port`. Nothing happens until Start().
  MetricsHttpServer(MetricRegistry* registry, int port);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds + listens + spawns the serving thread. Fails (without a
  /// thread) when the port cannot be bound.
  Status Start();

  /// The bound port (after a successful Start; 0 before).
  int port() const { return bound_port_; }

  /// Idempotent; blocks until the serving thread exits.
  void Stop();

 private:
  void Serve();
  void HandleConnection(int fd);

  MetricRegistry* const registry_;
  const int requested_port_;
  int bound_port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace tdb

#endif  // TDB_UTIL_METRICS_HTTP_H_
