#include "util/trace.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace tdb::trace {

namespace internal {

std::atomic<bool> g_enabled{false};

namespace {

/// One span as stored: 24 bytes, no ownership (names are literals).
struct StoredSpan {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
};

/// A thread's private ring. Only the owning thread writes; the
/// serializer reads `count` with acquire so everything a joined (or
/// otherwise happens-before-ordered) thread wrote is visible.
struct ThreadBuffer {
  static constexpr uint64_t kCapacity = 8192;  // 192 KiB per thread

  explicit ThreadBuffer(uint32_t tid_in) : tid(tid_in) {}

  uint32_t tid;
  std::atomic<uint64_t> count{0};  // monotonic spans emitted
  StoredSpan spans[kCapacity];
};

struct BufferDirectory {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  uint32_t next_tid = 1;
};

BufferDirectory& Directory() {
  static BufferDirectory* directory = new BufferDirectory();
  return *directory;
}

ThreadBuffer* LocalBuffer() {
  // The shared_ptr keeps the buffer alive in the directory after the
  // thread exits, so short-lived worker threads' spans survive into the
  // final dump.
  thread_local std::shared_ptr<ThreadBuffer> local = [] {
    BufferDirectory& directory = Directory();
    std::lock_guard<std::mutex> lock(directory.mu);
    auto buffer = std::make_shared<ThreadBuffer>(directory.next_tid++);
    directory.buffers.push_back(buffer);
    return buffer;
  }();
  return local.get();
}

}  // namespace

uint64_t NowNs() {
  // One process-wide anchor so every thread's timestamps share a zero.
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

void EmitSpan(const char* name, uint64_t start_ns, uint64_t end_ns) {
  ThreadBuffer* buffer = LocalBuffer();
  const uint64_t n = buffer->count.load(std::memory_order_relaxed);
  StoredSpan& slot = buffer->spans[n % ThreadBuffer::kCapacity];
  slot.name = name;
  slot.start_ns = start_ns;
  slot.dur_ns = end_ns - start_ns;
  buffer->count.store(n + 1, std::memory_order_release);
}

}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t TotalSpanCount() {
  internal::BufferDirectory& directory = internal::Directory();
  std::lock_guard<std::mutex> lock(directory.mu);
  uint64_t total = 0;
  for (const auto& buffer : directory.buffers) {
    total += buffer->count.load(std::memory_order_acquire);
  }
  return total;
}

void Reset() {
  internal::BufferDirectory& directory = internal::Directory();
  std::lock_guard<std::mutex> lock(directory.mu);
  for (const auto& buffer : directory.buffers) {
    buffer->count.store(0, std::memory_order_release);
  }
}

Status WriteChromeTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError(path + ": cannot write trace");
  }
  std::vector<std::shared_ptr<internal::ThreadBuffer>> buffers;
  {
    internal::BufferDirectory& directory = internal::Directory();
    std::lock_guard<std::mutex> lock(directory.mu);
    buffers = directory.buffers;
  }
  std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
  bool first = true;
  for (const auto& buffer : buffers) {
    const uint64_t count = buffer->count.load(std::memory_order_acquire);
    const uint64_t survivors =
        count < internal::ThreadBuffer::kCapacity
            ? count
            : internal::ThreadBuffer::kCapacity;
    for (uint64_t i = count - survivors; i < count; ++i) {
      const internal::StoredSpan& span =
          buffer->spans[i % internal::ThreadBuffer::kCapacity];
      // ts/dur are microseconds in the trace_event format; %.3f keeps
      // nanosecond resolution.
      std::fprintf(f,
                   "%s\n{\"name\": \"%s\", \"cat\": \"tdb\", \"ph\": "
                   "\"X\", \"pid\": 1, \"tid\": %u, \"ts\": %.3f, "
                   "\"dur\": %.3f}",
                   first ? "" : ",", span.name, buffer->tid,
                   static_cast<double>(span.start_ns) * 1e-3,
                   static_cast<double>(span.dur_ns) * 1e-3);
      first = false;
    }
  }
  std::fprintf(f, "\n]}\n");
  if (std::fclose(f) != 0) {
    return Status::IOError(path + ": close failed");
  }
  return Status::OK();
}

}  // namespace tdb::trace
