#!/usr/bin/env python3
"""Validates a live /metrics endpoint against the Prometheus text
exposition format (0.0.4) and the registry's own invariants.

Spawns the command given after `--` (typically tdb_serve with
--metrics-port and a --metrics-hold long enough to survive two
scrapes), polls the port until it answers, takes two scrapes a short
interval apart, then terminates the process. Hard-fails on:

  * malformed exposition lines, or samples without a # TYPE family;
  * illegal metric names ([a-zA-Z_:][a-zA-Z0-9_:]*);
  * counter samples that are not non-negative integers, or counter
    names missing the _total suffix;
  * histogram bucket series that are not cumulative, missing the +Inf
    bucket, or whose +Inf count disagrees with _count;
  * any counter that moved backwards between the two scrapes;
  * a /metrics.json body that does not parse as a JSON object with
    counters/gauges/histograms keys.

Usage:
  check_metrics_format.py --port 9464 [--timeout 30] [--interval 0.2] \
      -- build/tdb_serve --stream s.txt --metrics-port 9464 ...
"""

import argparse
import http.client
import json
import re
import subprocess
import sys
import time

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>\S+)$"
)


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def fetch(port, path, timeout=5.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


def wait_for_port(port, process, deadline):
    while time.monotonic() < deadline:
        if process.poll() is not None:
            fail(f"server exited early with code {process.returncode}")
        try:
            status, _ = fetch(port, "/metrics", timeout=1.0)
            if status == 200:
                return
        except OSError:
            pass
        time.sleep(0.1)
    fail("server never answered /metrics")


def base_family(name):
    """The family a histogram series line belongs to."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_exposition(body):
    """Returns (types: name -> type, samples: list of (name, labels,
    value_str)) after validating line-level syntax."""
    types = {}
    samples = []
    for lineno, line in enumerate(body.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4:
                fail(f"line {lineno}: malformed TYPE: {line!r}")
            _, _, name, mtype = parts
            if not NAME_RE.match(name):
                fail(f"line {lineno}: illegal metric name {name!r}")
            if mtype not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                fail(f"line {lineno}: unknown type {mtype!r}")
            if name in types:
                fail(f"line {lineno}: duplicate TYPE for {name}")
            types[name] = mtype
            continue
        if line.startswith("# HELP "):
            if len(line.split(" ", 3)) < 4:
                fail(f"line {lineno}: malformed HELP: {line!r}")
            continue
        if line.startswith("#"):
            continue  # comment
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"line {lineno}: malformed sample: {line!r}")
        name = m.group("name")
        family = base_family(name)
        if name not in types and family not in types:
            fail(f"line {lineno}: sample {name} has no TYPE family")
        try:
            float(m.group("value"))
        except ValueError:
            if m.group("value") != "+Inf":
                fail(f"line {lineno}: non-numeric value: {line!r}")
        samples.append((name, m.group("labels"), m.group("value")))
    return types, samples


def collect_counters(types, samples):
    counters = {}
    for name, labels, value in samples:
        if types.get(name) != "counter":
            continue
        if not name.endswith("_total"):
            fail(f"counter {name} does not end in _total")
        if labels is not None:
            fail(f"counter {name} unexpectedly carries labels")
        try:
            numeric = int(value)
        except ValueError:
            fail(f"counter {name} value {value!r} is not an integer")
        if numeric < 0:
            fail(f"counter {name} is negative: {numeric}")
        counters[name] = numeric
    return counters


LE_RE = re.compile(r'^le="(?P<le>[^"]+)"$')


def check_histograms(types, samples):
    series = {}  # family -> {"buckets": [(le, count)], "count": int}
    for name, labels, value in samples:
        family = base_family(name)
        if types.get(family) != "histogram":
            continue
        entry = series.setdefault(family, {"buckets": [], "count": None})
        if name.endswith("_bucket"):
            m = LE_RE.match(labels or "")
            if not m:
                fail(f"histogram {family}: bucket without le label")
            entry["buckets"].append((m.group("le"), int(value)))
        elif name.endswith("_count"):
            entry["count"] = int(value)
    for family, entry in series.items():
        buckets = entry["buckets"]
        if not buckets or buckets[-1][0] != "+Inf":
            fail(f"histogram {family}: missing +Inf bucket")
        previous_le = None
        previous_count = -1
        for le, count in buckets:
            if count < previous_count:
                fail(f"histogram {family}: buckets not cumulative at "
                     f"le={le}")
            if le != "+Inf":
                le_value = float(le)
                if previous_le is not None and le_value <= previous_le:
                    fail(f"histogram {family}: le edges not increasing")
                previous_le = le_value
            previous_count = count
        if entry["count"] is None:
            fail(f"histogram {family}: missing _count")
        if buckets[-1][1] != entry["count"]:
            fail(f"histogram {family}: +Inf bucket {buckets[-1][1]} != "
                 f"_count {entry['count']}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="seconds to wait for the port")
    parser.add_argument("--interval", type=float, default=0.2,
                        help="seconds between the two scrapes")
    parser.add_argument("command", nargs="+",
                        help="server command (after --)")
    args = parser.parse_args()

    process = subprocess.Popen(args.command)
    try:
        wait_for_port(args.port, process,
                      time.monotonic() + args.timeout)

        status, first_body = fetch(args.port, "/metrics")
        if status != 200:
            fail(f"first scrape returned {status}")
        first_types, first_samples = parse_exposition(first_body)
        if not first_samples:
            fail("first scrape exposed no samples")
        check_histograms(first_types, first_samples)
        first_counters = collect_counters(first_types, first_samples)

        time.sleep(args.interval)
        status, second_body = fetch(args.port, "/metrics")
        if status != 200:
            fail(f"second scrape returned {status}")
        second_types, second_samples = parse_exposition(second_body)
        check_histograms(second_types, second_samples)
        second_counters = collect_counters(second_types, second_samples)

        for name, first_value in first_counters.items():
            second_value = second_counters.get(name)
            if second_value is None:
                fail(f"counter {name} vanished between scrapes")
            if second_value < first_value:
                fail(f"counter {name} moved backwards: "
                     f"{first_value} -> {second_value}")

        status, json_body = fetch(args.port, "/metrics.json")
        if status != 200:
            fail(f"/metrics.json returned {status}")
        try:
            dump = json.loads(json_body)
        except json.JSONDecodeError as error:
            fail(f"/metrics.json is not valid JSON: {error}")
        for key in ("counters", "gauges", "histograms"):
            if key not in dump:
                fail(f"/metrics.json missing {key!r}")

        print(f"OK: {len(first_samples)} samples, "
              f"{len(first_counters)} counters monotonic across scrapes, "
              f"{sum(1 for t in first_types.values() if t == 'histogram')}"
              f" histograms well-formed")
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()


if __name__ == "__main__":
    main()
