#!/usr/bin/env python3
"""Kill/restart drill for the durable cycle-break service.

For each (seed, durability) configuration this script:
  1. generates a timestamped edge stream (tdb_graphgen --stream);
  2. runs tdb_serve --data-dir once, uninterrupted, and keeps its
     canonical --state-dump as the oracle;
  3. replays the same command line against a fresh store, SIGKILLing the
     process after a randomized number of batches (tdb_serve
     --kill-after raises SIGKILL on itself — no flush, no destructor),
     optionally tearing extra bytes off the journal tail between
     restarts, and rerunning until a run completes;
  4. hard-fails unless the crashed-and-recovered state dump is
     byte-identical to the uninterrupted one (epoch, base checksum,
     delta, base cover and S/W sets all included).

Runs use --sync-compaction so the epoch sequence is deterministic and
--admit-threads 0 so the comparison is pure ingest state. The stream is
consumed verbatim (no --gate), matching the resume arithmetic.

Usage:
  crash_recovery_drill.py --serve build/tdb_serve \
      --graphgen build/tdb_graphgen --workdir out/drill \
      [--seeds 3] [--durability batch,always] [--events 600]
"""

import argparse
import os
import random
import shutil
import signal
import subprocess
import sys
import zlib

JOURNAL_HEADER_BYTES = 16  # "TDBJ" + version u32 + base_seq u64


def run(cmd, **kwargs):
    return subprocess.run(cmd, capture_output=True, text=True, **kwargs)


def generate_stream(graphgen, path, n, m, seed):
    result = run([graphgen, "--er", str(n), str(m), "--stream",
                  "--seed", str(seed), "--out", path])
    if result.returncode != 0:
        sys.exit(f"graphgen failed: {result.stderr}")


def serve_cmd(serve, stream, data_dir, durability, dump=None,
              kill_after=None):
    cmd = [serve, "--stream", stream, "--k", "4", "--batch", "16",
           "--admit-threads", "0", "--sync-compaction",
           "--compact-threshold", "64", "--data-dir", data_dir,
           "--durability", durability]
    if dump:
        cmd += ["--state-dump", dump]
    if kill_after:
        cmd += ["--kill-after", str(kill_after)]
    return cmd


def tear_journal_tail(data_dir, rng):
    """Simulates a torn write: drops 1..12 bytes off the journal tail
    (never into the fsync'd header — a manifest-named journal always has
    a durable header, so tearing it would simulate impossible damage)."""
    journals = [f for f in os.listdir(data_dir) if f.startswith("journal-")]
    if len(journals) != 1:
        return False
    path = os.path.join(data_dir, journals[0])
    size = os.path.getsize(path)
    if size <= JOURNAL_HEADER_BYTES:
        return False
    cut = min(rng.randint(1, 12), size - JOURNAL_HEADER_BYTES)
    with open(path, "ab") as f:
        f.truncate(size - cut)
    return True


def drill_one(args, seed, durability):
    tag = f"seed{seed}-{durability}"
    workdir = os.path.join(args.workdir, tag)
    shutil.rmtree(workdir, ignore_errors=True)
    os.makedirs(workdir)
    stream = os.path.join(workdir, "stream.txt")
    generate_stream(args.graphgen, stream, args.vertices, args.events, seed)

    # Oracle: one uninterrupted durable run.
    ref_dump = os.path.join(workdir, "ref-state.txt")
    result = run(serve_cmd(args.serve, stream,
                           os.path.join(workdir, "ref-store"), durability,
                           dump=ref_dump))
    if result.returncode != 0:
        sys.exit(f"[{tag}] reference run failed:\n{result.stderr}")

    # Crash loop: kill at randomized batch offsets until a run finishes.
    # The derivation must be stable across interpreter runs (str hash is
    # salted per process) so a failing drill reproduces from its seed.
    rng = random.Random(seed * 7919 + zlib.crc32(durability.encode()))
    crash_store = os.path.join(workdir, "crash-store")
    crash_dump = os.path.join(workdir, "crash-state.txt")
    kills = 0
    tears = 0
    for attempt in range(args.max_restarts):
        kill_after = rng.randint(1, args.kill_span)
        result = run(serve_cmd(args.serve, stream, crash_store, durability,
                               dump=crash_dump, kill_after=kill_after))
        if result.returncode == 0:
            break
        if result.returncode != -signal.SIGKILL:
            sys.exit(f"[{tag}] unexpected exit {result.returncode}:\n"
                     f"{result.stderr}")
        kills += 1
        if rng.random() < 0.5 and tear_journal_tail(crash_store, rng):
            tears += 1
    else:
        sys.exit(f"[{tag}] did not complete in {args.max_restarts} "
                 f"restarts")

    with open(ref_dump) as f:
        ref = f.read()
    with open(crash_dump) as f:
        crash = f.read()
    if ref != crash:
        print(f"[{tag}] RECOVERED STATE DIVERGES after {kills} kills:",
              file=sys.stderr)
        for i, (a, b) in enumerate(zip(ref.splitlines(),
                                       crash.splitlines())):
            if a != b:
                print(f"  line {i + 1}: ref '{a}' vs crash '{b}'",
                      file=sys.stderr)
                break
        sys.exit(1)
    print(f"[{tag}] OK: {kills} kills, {tears} torn tails, "
          f"state bit-identical to the uninterrupted run")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", required=True)
    parser.add_argument("--graphgen", required=True)
    parser.add_argument("--workdir", required=True)
    parser.add_argument("--seeds", type=int, default=3)
    parser.add_argument("--durability", default="batch,always")
    parser.add_argument("--vertices", type=int, default=60)
    parser.add_argument("--events", type=int, default=600)
    parser.add_argument("--kill-span", type=int, default=12,
                        help="kill after 1..N batches of each attempt")
    parser.add_argument("--max-restarts", type=int, default=50)
    args = parser.parse_args()

    for seed in range(1, args.seeds + 1):
        for durability in args.durability.split(","):
            drill_one(args, seed, durability)
    print("crash-recovery drill: all configurations recovered exactly")


if __name__ == "__main__":
    main()
