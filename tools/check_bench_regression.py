#!/usr/bin/env python3
"""Compare a benchmark's --json output against a committed baseline.

Usage:
  check_bench_regression.py --baseline bench/baselines/giant_scc.json \
      --current out/giant_scc.json [--max-slowdown 3.0]

Row semantics (see bench/bench_runner.h JsonSink):
  * the row with "row": "params" pins the benchmark's shape; it must match
    the baseline exactly, otherwise the comparison is meaningless and the
    script fails loudly rather than comparing apples to oranges;
  * every other row is identified by its non-metric keys (algo, threads,
    ...) and carries the metrics "seconds", "speedup" and "cover".

Checks per baseline row:
  * presence — a row that disappeared is a regression;
  * cover    — exact match: the solvers are deterministic, so any drift in
               cover size is a correctness/quality regression, not noise;
  * seconds  — current <= baseline * max-slowdown + grace. The threshold
               is deliberately generous (default 3x plus a 50 ms absolute
               grace) so shared-runner noise does not flake the job while
               an accidental O(n) -> O(n^2) still fails it.

Speedup is reported but not gated here: the bench binary itself enforces
the TDB_BENCH_MIN_SPEEDUP floor where configured.
"""

import argparse
import json
import sys

# Latency percentiles (admit_p*_us) are machine-dependent measurements
# like seconds/speedup: excluded from row identity so runs with and
# without them still match the same baseline rows.
METRIC_KEYS = {"seconds", "speedup", "cover", "would_close",
               "admit_p50_us", "admit_p95_us", "admit_p99_us"}
ABSOLUTE_GRACE_SECONDS = 0.05


def identity(row):
    return tuple(sorted((k, v) for k, v in row.items()
                        if k not in METRIC_KEYS))


def load(path):
    with open(path) as f:
        doc = json.load(f)
    params = {}
    rows = {}
    for row in doc.get("rows", []):
        tag = row.get("row")
        if tag is not None:
            # A tagged row ("params", "admit_params", ...) pins benchmark
            # shape rather than carrying metrics.
            params[tag] = {k: v for k, v in row.items() if k != "row"}
        else:
            rows[identity(row)] = row
    return doc.get("bench", "?"), params or None, rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--max-slowdown", type=float, default=3.0)
    args = parser.parse_args()

    base_name, base_params, base_rows = load(args.baseline)
    cur_name, cur_params, cur_rows = load(args.current)

    failures = []
    if base_name != cur_name:
        failures.append(f"bench name mismatch: {base_name} vs {cur_name}")
    if base_params != cur_params:
        failures.append(
            f"benchmark shape changed: baseline params {base_params} vs "
            f"current {cur_params}; regenerate the baseline")

    print(f"== {cur_name}: {len(base_rows)} baseline rows, "
          f"max slowdown {args.max_slowdown:.2f}x ==")
    for key, base in sorted(base_rows.items()):
        label = " ".join(f"{k}={v}" for k, v in key)
        cur = cur_rows.get(key)
        if cur is None:
            failures.append(f"missing row: {label}")
            continue
        allowed = (base["seconds"] * args.max_slowdown +
                   ABSOLUTE_GRACE_SECONDS)
        ratio = (cur["seconds"] / base["seconds"]
                 if base["seconds"] > 0 else float("inf"))
        verdict = "ok"
        if cur["seconds"] > allowed:
            verdict = "SLOW"
            failures.append(
                f"{label}: {cur['seconds']:.3f}s vs baseline "
                f"{base['seconds']:.3f}s (allowed {allowed:.3f}s)")
        if cur.get("cover") != base.get("cover"):
            verdict = "COVER"
            failures.append(
                f"{label}: cover {cur.get('cover')} != baseline "
                f"{base.get('cover')} (deterministic output drifted)")
        # would_close is a deterministic verdict count (admission mode
        # rows): like cover, any drift is a correctness regression.
        if cur.get("would_close") != base.get("would_close"):
            verdict = "VERDICTS"
            failures.append(
                f"{label}: would_close {cur.get('would_close')} != "
                f"baseline {base.get('would_close')} (admission verdicts "
                f"drifted)")
        print(f"  {label:<30} {cur['seconds']:>8.3f}s "
              f"({ratio:>5.2f}x of baseline, "
              f"speedup {cur.get('speedup', 0):.2f}x) {verdict}")

    if failures:
        print("\nFAILURES:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("all rows within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
