// tdb_graphgen: emits synthetic graphs (including the paper-dataset
// proxies) as edge-list or TDBG files, so the CLI and external tooling can
// consume the exact graphs the benchmarks run on.
//
//   tdb_graphgen --proxy WKV [--scale 1.0] --out wkv.txt [--binary]
//   tdb_graphgen --er N M [--seed S] --out er.txt
//   tdb_graphgen --powerlaw N M THETA RECIP [--seed S] --out pl.txt
//   tdb_graphgen --er N M --stream --out er_stream.txt
//
// --stream emits the generated edges as a shuffled timestamped stream
// ("u v t" per line, t = arrival index) instead of a graph file, so
// tdb_serve and bench_dynamic_stream can replay the identical workload.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "datasets.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "util/rng.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  tdb_graphgen --proxy NAME [--scale X] --out FILE [--binary]\n"
      "  tdb_graphgen --er N M [--seed S] --out FILE [--binary]\n"
      "  tdb_graphgen --powerlaw N M THETA RECIP [--seed S] --out FILE\n"
      "  any of the above + --stream: write a shuffled timestamped edge\n"
      "  stream (one \"u v t\" per line; shuffle seeded by --seed)\n"
      "proxies: WKV ASC GNU EU SAD WND CT WST LOAN WIT WGO WBS FLK LJ WKP "
      "TW\n");
}

/// The generated graph's edges in a seeded-shuffle arrival order with
/// timestamps 0, 1, 2, ... — the canonical replay workload.
std::vector<tdb::TimedEdge> ToStream(const tdb::CsrGraph& g, uint64_t seed) {
  std::vector<tdb::TimedEdge> stream;
  stream.reserve(g.num_edges());
  for (tdb::EdgeId e = 0; e < g.num_edges(); ++e) {
    stream.push_back(tdb::TimedEdge{g.EdgeSrc(e), g.EdgeDst(e), 0});
  }
  tdb::Rng rng(seed);
  for (size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.NextBounded(i)]);
  }
  for (size_t i = 0; i < stream.size(); ++i) {
    stream[i].timestamp = i;
  }
  return stream;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tdb;
  std::string out_path;
  std::string proxy;
  bool stream = false;
  bool binary = false;
  bool use_er = false;
  bool use_pl = false;
  double scale = 1.0;
  uint64_t seed = 1;
  VertexId n = 0;
  EdgeId m = 0;
  double theta = 0.7;
  double recip = 0.2;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--proxy") {
      const char* v = next();
      if (v == nullptr) break;
      proxy = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) break;
      out_path = v;
    } else if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr) break;
      scale = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) break;
      seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--binary") {
      binary = true;
    } else if (arg == "--stream") {
      stream = true;
    } else if (arg == "--er" && i + 2 < argc) {
      use_er = true;
      n = static_cast<VertexId>(std::atoll(argv[++i]));
      m = static_cast<EdgeId>(std::atoll(argv[++i]));
    } else if (arg == "--powerlaw" && i + 4 < argc) {
      use_pl = true;
      n = static_cast<VertexId>(std::atoll(argv[++i]));
      m = static_cast<EdgeId>(std::atoll(argv[++i]));
      theta = std::atof(argv[++i]);
      recip = std::atof(argv[++i]);
    } else {
      PrintUsage();
      return 2;
    }
  }
  if (out_path.empty() || (proxy.empty() && !use_er && !use_pl)) {
    PrintUsage();
    return 2;
  }

  CsrGraph g;
  if (!proxy.empty()) {
    const bench::DatasetSpec* spec = bench::FindDataset(proxy);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown proxy %s\n", proxy.c_str());
      return 2;
    }
    g = bench::BuildProxy(*spec, scale);
  } else if (use_er) {
    g = GenerateErdosRenyi(n, m, seed);
  } else {
    PowerLawParams params;
    params.n = n;
    params.m = m;
    params.theta = theta;
    params.reciprocity = recip;
    params.seed = seed;
    g = GeneratePowerLaw(params);
  }

  std::fprintf(stderr, "generated: %s\n",
               ComputeStats(g).ToString().c_str());
  Status st;
  if (stream) {
    st = SaveEdgeStreamText(ToStream(g, seed), out_path);
  } else {
    st = binary ? SaveBinary(g, out_path) : SaveEdgeListText(g, out_path);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
