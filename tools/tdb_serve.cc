// tdb_serve: stream-replay driver for the online cycle-break service.
//
//   tdb_serve --stream FILE [--base FILE] [--k 5] [--batch 256]
//             [--admit-threads 2] [--ingest-threads 1] [--algo TDB++]
//             [--compact-threshold 4096] [--sync-compaction] [--gate]
//             [--two-cycles] [--seed 42] [--compact-budget SEC]
//             [--scc-algo tarjan|fwbw] [--admission-cache [LOG2]]
//
// Replays a timestamped edge stream (tdb_graphgen --stream) through a
// CycleBreakService: the main thread ingests in batches while
// --admit-threads reader threads fire CheckAdmission queries drawn from
// the same vertex universe, concurrently and without coordination. With
// --gate, each stream edge is admission-checked first and dropped when it
// would close an uncovered cycle — the fraud-prevention deployment shape.
// Gate verdicts come from the last *published* snapshot, so admitted
// edges still pending in the current batch window are invisible to the
// check (a cycle completed entirely within one batch passes the gate and
// is covered at ingest instead); run with --batch 1 for exact per-edge
// gating. Reports ingest/admission throughput and latency percentiles.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph_io.h"
#include "service/cycle_break_service.h"
#include "service/ingest_batcher.h"
#include "service/stats.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace tdb;

struct CliArgs {
  std::string stream_path;
  std::string base_path;
  std::string algo = "TDB++";
  std::string scc_algo = "tarjan";
  int admission_cache_log2 = 0;
  uint32_t k = 5;
  size_t batch = 256;
  int admit_threads = 2;
  int ingest_threads = 1;
  EdgeId compact_threshold = 4096;
  double compact_budget = 0.0;
  uint64_t seed = 42;
  bool sync_compaction = false;
  bool gate = false;
  bool two_cycles = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: tdb_serve --stream FILE [options]\n"
      "  --stream FILE         timestamped edge stream (tdb_graphgen "
      "--stream)\n"
      "  --base FILE           SNAP-style edge list to preload as the "
      "snapshot\n"
      "  --k N                 hop constraint (default 5)\n"
      "  --batch N             ingest batch size (default 256)\n"
      "  --admit-threads N     concurrent admission reader threads "
      "(default 2)\n"
      "  --ingest-threads N    speculative probe workers (default 1)\n"
      "  --algo NAME           compaction algorithm (default TDB++)\n"
      "  --compact-threshold N delta size triggering compaction "
      "(default 4096, 0 = never)\n"
      "  --compact-budget SEC  work-budget-split deadline per compaction\n"
      "  --scc-algo NAME       condensation strategy for compaction\n"
      "                        solves: tarjan | fwbw (parallel)\n"
      "  --admission-cache [L] memoize admission verdicts per epoch in a\n"
      "                        2^L-entry cache (default L=16 when the\n"
      "                        flag is given; off otherwise)\n"
      "  --sync-compaction     compact inline instead of in background\n"
      "  --gate                drop stream edges that would close an\n"
      "                        uncovered cycle instead of ingesting them\n"
      "                        (verdicts see the last published batch;\n"
      "                        use --batch 1 for exact per-edge gating)\n"
      "  --two-cycles          also treat 2-cycles as cycles\n"
      "  --seed S              admission query workload seed\n");
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--stream" && (v = next()) != nullptr) {
      args->stream_path = v;
    } else if (arg == "--base" && (v = next()) != nullptr) {
      args->base_path = v;
    } else if (arg == "--algo" && (v = next()) != nullptr) {
      args->algo = v;
    } else if (arg == "--k" && (v = next()) != nullptr) {
      args->k = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--batch" && (v = next()) != nullptr) {
      args->batch = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--admit-threads" && (v = next()) != nullptr) {
      args->admit_threads = std::atoi(v);
    } else if (arg == "--ingest-threads" && (v = next()) != nullptr) {
      args->ingest_threads = std::atoi(v);
    } else if (arg == "--compact-threshold" && (v = next()) != nullptr) {
      args->compact_threshold = static_cast<EdgeId>(std::atoll(v));
    } else if (arg == "--compact-budget" && (v = next()) != nullptr) {
      args->compact_budget = std::atof(v);
    } else if (arg == "--seed" && (v = next()) != nullptr) {
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--scc-algo" && (v = next()) != nullptr) {
      args->scc_algo = v;
    } else if (arg == "--admission-cache") {
      // Optional value: a following numeric token is the log2 capacity.
      args->admission_cache_log2 = 16;
      if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(
                              argv[i + 1][0])) != 0) {
        args->admission_cache_log2 = std::atoi(argv[++i]);
      }
    } else if (arg == "--sync-compaction") {
      args->sync_compaction = true;
    } else if (arg == "--gate") {
      args->gate = true;
    } else if (arg == "--two-cycles") {
      args->two_cycles = true;
    } else {
      if (arg != "--help" && arg != "-h") {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      }
      return false;
    }
  }
  return !args->stream_path.empty();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }

  std::vector<TimedEdge> stream;
  Status st = LoadEdgeStreamText(args.stream_path, &stream);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot load stream: %s\n", st.ToString().c_str());
    return 1;
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const TimedEdge& a, const TimedEdge& b) {
                     return a.timestamp < b.timestamp;
                   });

  // The stream format addresses raw (non-densified) vertex ids, so the
  // base must be re-expressed over the same raw ids — LoadEdgeListText
  // densifies in first-appearance order, which would silently renumber a
  // base whose file order is not already dense.
  std::vector<Edge> base_edges;
  VertexId universe = 0;
  if (!args.base_path.empty()) {
    CsrGraph dense;
    std::vector<uint64_t> original_ids;
    st = LoadEdgeListText(args.base_path, &dense, &original_ids);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot load base: %s\n", st.ToString().c_str());
      return 1;
    }
    for (uint64_t raw : original_ids) {
      if (raw >= kInvalidVertex) {
        std::fprintf(stderr,
                     "base vertex id %llu does not fit the stream's "
                     "32-bit universe\n",
                     static_cast<unsigned long long>(raw));
        return 1;
      }
      universe = std::max(universe, static_cast<VertexId>(raw) + 1);
    }
    base_edges.reserve(dense.num_edges());
    for (EdgeId e = 0; e < dense.num_edges(); ++e) {
      base_edges.push_back(
          Edge{static_cast<VertexId>(original_ids[dense.EdgeSrc(e)]),
               static_cast<VertexId>(original_ids[dense.EdgeDst(e)])});
    }
  }
  for (const TimedEdge& e : stream) {
    universe = std::max(universe, std::max(e.src, e.dst) + 1);
  }
  CsrGraph base = CsrGraph::FromEdges(universe, std::move(base_edges));

  ServiceOptions options;
  options.cover.k = args.k;
  options.cover.include_two_cycles = args.two_cycles;
  options.compact_delta_threshold = args.compact_threshold;
  options.synchronous_compaction = args.sync_compaction;
  options.ingest_threads = args.ingest_threads;
  options.compact_time_limit_seconds = args.compact_budget;
  options.admission_cache_log2 = args.admission_cache_log2;
  st = ParseAlgorithm(args.algo, &options.compact_algorithm);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  st = ParseSccAlgorithm(args.scc_algo, &options.cover.scc_algorithm);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  st = options.Validate();
  if (!st.ok()) {
    std::fprintf(stderr, "bad options: %s\n", st.ToString().c_str());
    return 2;
  }

  std::fprintf(stderr,
               "serving universe of %u vertices: base %llu edges, stream "
               "%zu events\n",
               universe, static_cast<unsigned long long>(base.num_edges()),
               stream.size());

  Timer setup_timer;
  CycleBreakService service(std::move(base), options);
  std::fprintf(stderr, "initial solve + publish: %.3fs (epoch %llu)\n",
               setup_timer.ElapsedSeconds(),
               static_cast<unsigned long long>(service.epoch()));

  LatencyHistogram ingest_lat;
  LatencyHistogram admit_lat;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> background_queries{0};

  // Background admission readers: uniform random pairs over the universe,
  // each thread with a private seeded stream.
  std::vector<std::thread> readers;
  for (int t = 0; t < args.admit_threads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(args.seed + 1000 + static_cast<uint64_t>(t));
      uint64_t count = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const VertexId u = static_cast<VertexId>(rng.NextBounded(universe));
        const VertexId v = static_cast<VertexId>(rng.NextBounded(universe));
        Timer timer;
        (void)service.CheckAdmission(u, v);
        admit_lat.Record(timer.ElapsedSeconds());
        ++count;
      }
      background_queries.fetch_add(count, std::memory_order_relaxed);
    });
  }

  // Foreground replay: batch ingest, optionally admission-gated.
  Timer run_timer;
  IngestBatcher batcher(&service, args.batch);
  uint64_t gated = 0;
  for (const TimedEdge& e : stream) {
    if (args.gate) {
      const AdmissionVerdict verdict = service.CheckAdmission(e.src, e.dst);
      if (verdict.would_close) {
        ++gated;
        continue;
      }
    }
    Timer timer;
    const SubmitResult r = batcher.Add(e.src, e.dst);
    if (r.epoch != 0) ingest_lat.Record(timer.ElapsedSeconds());
  }
  {
    Timer timer;
    if (batcher.Flush().epoch != 0) ingest_lat.Record(timer.ElapsedSeconds());
  }
  service.WaitForCompaction();
  const double ingest_seconds = run_timer.ElapsedSeconds();
  done.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();

  const ServiceStatsSnapshot s = service.Stats();
  const auto snapshot = service.PinSnapshot();
  const double qps =
      ingest_seconds > 0
          ? static_cast<double>(s.admission_queries) / ingest_seconds
          : 0.0;
  const double eps =
      ingest_seconds > 0 ? static_cast<double>(stream.size()) / ingest_seconds
                         : 0.0;
  std::printf("== tdb_serve replay: %s ==\n", args.stream_path.c_str());
  std::printf("ingest:     %zu events in %.3fs (%.0f events/s), "
              "%llu batches, %llu inserted, %llu rejected%s\n",
              stream.size(), ingest_seconds, eps,
              static_cast<unsigned long long>(s.batches),
              static_cast<unsigned long long>(s.edges_inserted),
              static_cast<unsigned long long>(s.edges_rejected),
              args.gate ? " (gated)" : "");
  if (args.gate) {
    std::printf("gate:       %llu edges dropped as cycle-closing\n",
                static_cast<unsigned long long>(gated));
  }
  std::printf("admission:  %llu queries (%.0f/s), %llu would close an "
              "uncovered cycle\n",
              static_cast<unsigned long long>(s.admission_queries), qps,
              static_cast<unsigned long long>(s.admission_would_close));
  if (args.admission_cache_log2 > 0) {
    const uint64_t looked = s.admission_cache_hits + s.admission_cache_misses;
    const double hit_rate =
        looked > 0 ? 100.0 * static_cast<double>(s.admission_cache_hits) /
                         static_cast<double>(looked)
                   : 0.0;
    std::printf("cache:      %llu hits / %llu misses (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(s.admission_cache_hits),
                static_cast<unsigned long long>(s.admission_cache_misses),
                hit_rate);
  }
  std::printf("latency:    ingest batch p50 %.1fus p95 %.1fus p99 %.1fus | "
              "admission p50 %.1fus p95 %.1fus p99 %.1fus\n",
              ingest_lat.PercentileSeconds(0.50) * 1e6,
              ingest_lat.PercentileSeconds(0.95) * 1e6,
              ingest_lat.PercentileSeconds(0.99) * 1e6,
              admit_lat.PercentileSeconds(0.50) * 1e6,
              admit_lat.PercentileSeconds(0.95) * 1e6,
              admit_lat.PercentileSeconds(0.99) * 1e6);
  std::printf("state:      epoch %llu, %llu compactions (%llu failed), "
              "cycles covered %llu, |S| %zu, base cover %zu, delta %llu\n",
              static_cast<unsigned long long>(service.epoch()),
              static_cast<unsigned long long>(s.compactions),
              static_cast<unsigned long long>(s.compactions_failed),
              static_cast<unsigned long long>(s.cycles_covered),
              snapshot->cover.covered.size(),
              snapshot->cover.base->vertices.size(),
              static_cast<unsigned long long>(snapshot->graph.delta_edges()));
  return 0;
}
