// tdb_serve: stream-replay driver for the online cycle-break service.
//
//   tdb_serve --stream FILE [--base FILE] [--k 5] [--batch 256]
//             [--admit-threads 2] [--ingest-threads 1] [--algo TDB++]
//             [--compact-threshold 4096] [--sync-compaction] [--gate]
//             [--two-cycles] [--seed 42] [--compact-budget SEC]
//             [--scc-algo tarjan|fwbw|uf] [--admission-cache [LOG2]]
//             [--data-dir DIR] [--durability none|batch|always]
//             [--compressed-base] [--kill-after N] [--state-dump FILE]
//             [--shards N] [--boundary-cap N]
//
// Replays a timestamped edge stream (tdb_graphgen --stream) through a
// GraphService backend — the unsharded CycleBreakService by default, or
// with --shards N the in-process sharded router
// (ShardedCycleBreakService), which partitions the universe across N
// shard services and answers cross-shard admissions through per-publish
// boundary summaries. Either way: the main thread ingests in batches while
// --admit-threads reader threads fire CheckAdmission queries drawn from
// the same vertex universe, concurrently and without coordination. With
// --gate, each stream edge is admission-checked first and dropped when it
// would close an uncovered cycle — the fraud-prevention deployment shape.
// Gate verdicts come from the last *published* snapshot, so admitted
// edges still pending in the current batch window are invisible to the
// check (a cycle completed entirely within one batch passes the gate and
// is covered at ingest instead); run with --batch 1 for exact per-edge
// gating. Reports ingest/admission throughput and latency percentiles.
//
// Durability & the kill/restart drill: --data-dir makes the service
// durable (snapshot + write-ahead journal under DIR; --durability picks
// the fsync policy). A rerun against a DIR that already holds a store
// RECOVERS it — replays the journal tail — and resumes the stream at the
// recovered event offset, so killing the process at any point and
// rerunning the same command line converges to the same final state as
// one uninterrupted run (with --sync-compaction, bit-identically;
// tools/crash_recovery_drill.py asserts exactly that in CI).
// --kill-after N raises SIGKILL after the Nth ingested batch of THIS
// process — no flush, no destructor, the honest crash. --state-dump
// writes the final graph + transversal in a canonical text form for
// state-equality comparison across runs. Resume arithmetic assumes the
// stream is consumed verbatim, so --gate cannot be combined with
// --data-dir.
#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "graph/graph_io.h"
#include "service/cycle_break_service.h"
#include "service/graph_service.h"
#include "service/ingest_batcher.h"
#include "service/service_metrics.h"
#include "service/sharded_service.h"
#include "service/stats.h"
#include "util/crc32.h"
#include "util/metrics.h"
#include "util/metrics_http.h"
#include "util/rng.h"
#include "util/timer.h"
#include "util/trace.h"

namespace {

using namespace tdb;

/// SIGTERM/SIGINT request a graceful wind-down: the replay loop and the
/// --metrics-hold wait both break out, so the exit path still writes the
/// final metrics dump and the trace (what the CI scrape smoke relies on
/// to stop the server). SIGKILL (--kill-after) stays the honest crash.
std::atomic<bool> g_shutdown{false};

void OnShutdownSignal(int) { g_shutdown.store(true); }

struct CliArgs {
  std::string stream_path;
  std::string base_path;
  std::string algo = "TDB++";
  std::string scc_algo = "tarjan";
  std::string data_dir;
  std::string durability = "batch";
  std::string state_dump;
  std::string metrics_dump;
  std::string trace_out;
  int metrics_port = -1;  // -1 = off, 0 = kernel-assigned
  double metrics_interval = 5.0;
  double metrics_hold = 0.0;
  int admission_cache_log2 = 0;
  int admission_index = 0;
  size_t admission_batch = 0;
  uint32_t k = 5;
  size_t batch = 256;
  int shards = 0;  // 0 = unsharded CycleBreakService
  int boundary_cap = 128;
  int admit_threads = 2;
  int ingest_threads = 1;
  EdgeId compact_threshold = 4096;
  double compact_budget = 0.0;
  uint64_t seed = 42;
  uint64_t kill_after = 0;  // 0 = never
  bool sync_compaction = false;
  bool compressed_base = false;
  bool gate = false;
  bool two_cycles = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: tdb_serve --stream FILE [options]\n"
      "  --stream FILE         timestamped edge stream (tdb_graphgen "
      "--stream)\n"
      "  --base FILE           SNAP-style edge list to preload as the "
      "snapshot\n"
      "  --k N                 hop constraint (default 5)\n"
      "  --batch N             ingest batch size (default 256)\n"
      "  --admit-threads N     concurrent admission reader threads "
      "(default 2)\n"
      "  --ingest-threads N    speculative probe workers (default 1)\n"
      "  --algo NAME           compaction algorithm (default TDB++)\n"
      "  --compact-threshold N delta size triggering compaction "
      "(default 4096, 0 = never)\n"
      "  --compact-budget SEC  work-budget-split deadline per compaction\n"
      "  --scc-algo NAME       condensation strategy for compaction\n"
      "                        solves: tarjan | fwbw (parallel) | uf\n"
      "                        (concurrent union-find UFSCC)\n"
      "  --admission-cache [L] memoize admission verdicts per epoch in a\n"
      "                        2^L-entry cache (default L=16 when the\n"
      "                        flag is given; off otherwise)\n"
      "  --admission-index N   build N-landmark distance sketches at each\n"
      "                        publish; admission checks short-circuit by\n"
      "                        distance arithmetic (0 = off)\n"
      "  --admission-batch N   readers submit admission queries in\n"
      "                        batches of N via CheckAdmissionBatch\n"
      "                        (shared multi-source probes; 0 = per-query)\n"
      "  --data-dir DIR        durable store (snapshot + WAL journal);\n"
      "                        reruns recover the store and resume the\n"
      "                        stream at the recovered offset\n"
      "  --durability POLICY   journal fsync policy: none | batch |\n"
      "                        always (default batch)\n"
      "  --kill-after N        drill mode: SIGKILL self after the Nth\n"
      "                        ingested batch of this process\n"
      "  --state-dump FILE     write the final graph + transversal in\n"
      "                        canonical text form (crash-drill oracle)\n"
      "  --shards N            serve through the in-process sharded\n"
      "                        router with N shard services (0 = the\n"
      "                        unsharded backend; excludes the admission\n"
      "                        cache/index flags)\n"
      "  --boundary-cap N      largest cross-shard boundary for which the\n"
      "                        router builds per-publish summaries\n"
      "                        (default 128; 0 = always scatter/gather)\n"
      "  --sync-compaction     compact inline instead of in background\n"
      "  --compressed-base     keep the immutable base in the\n"
      "                        delta/varint CompressedCsr backend\n"
      "                        (identical verdicts, smaller residency;\n"
      "                        snapshots are written compressed)\n"
      "  --gate                drop stream edges that would close an\n"
      "                        uncovered cycle instead of ingesting them\n"
      "                        (verdicts see the last published batch;\n"
      "                        use --batch 1 for exact per-edge gating)\n"
      "  --two-cycles          also treat 2-cycles as cycles\n"
      "  --seed S              admission query workload seed\n"
      "  --metrics-port N      serve GET /metrics (Prometheus text) and\n"
      "                        /metrics.json on 127.0.0.1:N (0 = pick a\n"
      "                        free port; printed on stderr)\n"
      "  --metrics-hold SEC    keep serving /metrics for SEC seconds\n"
      "                        after the replay finishes\n"
      "  --metrics-dump FILE   write the registry as JSON to FILE every\n"
      "                        --metrics-interval seconds and at exit\n"
      "  --metrics-interval S  dump period in seconds (default 5)\n"
      "  --trace-out FILE      enable span tracing; write Chrome\n"
      "                        trace_event JSON to FILE at exit\n");
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--stream" && (v = next()) != nullptr) {
      args->stream_path = v;
    } else if (arg == "--base" && (v = next()) != nullptr) {
      args->base_path = v;
    } else if (arg == "--algo" && (v = next()) != nullptr) {
      args->algo = v;
    } else if (arg == "--k" && (v = next()) != nullptr) {
      args->k = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--batch" && (v = next()) != nullptr) {
      args->batch = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--shards" && (v = next()) != nullptr) {
      args->shards = std::atoi(v);
    } else if (arg == "--boundary-cap" && (v = next()) != nullptr) {
      args->boundary_cap = std::atoi(v);
    } else if (arg == "--admit-threads" && (v = next()) != nullptr) {
      args->admit_threads = std::atoi(v);
    } else if (arg == "--ingest-threads" && (v = next()) != nullptr) {
      args->ingest_threads = std::atoi(v);
    } else if (arg == "--compact-threshold" && (v = next()) != nullptr) {
      args->compact_threshold = static_cast<EdgeId>(std::atoll(v));
    } else if (arg == "--compact-budget" && (v = next()) != nullptr) {
      args->compact_budget = std::atof(v);
    } else if (arg == "--seed" && (v = next()) != nullptr) {
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--scc-algo" && (v = next()) != nullptr) {
      args->scc_algo = v;
    } else if (arg == "--data-dir" && (v = next()) != nullptr) {
      args->data_dir = v;
    } else if (arg == "--durability" && (v = next()) != nullptr) {
      args->durability = v;
    } else if (arg == "--kill-after" && (v = next()) != nullptr) {
      args->kill_after = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--state-dump" && (v = next()) != nullptr) {
      args->state_dump = v;
    } else if (arg == "--metrics-port" && (v = next()) != nullptr) {
      args->metrics_port = std::atoi(v);
    } else if (arg == "--metrics-hold" && (v = next()) != nullptr) {
      args->metrics_hold = std::atof(v);
    } else if (arg == "--metrics-dump" && (v = next()) != nullptr) {
      args->metrics_dump = v;
    } else if (arg == "--metrics-interval" && (v = next()) != nullptr) {
      args->metrics_interval = std::atof(v);
    } else if (arg == "--trace-out" && (v = next()) != nullptr) {
      args->trace_out = v;
    } else if (arg == "--admission-index" && (v = next()) != nullptr) {
      args->admission_index = std::atoi(v);
    } else if (arg == "--admission-batch" && (v = next()) != nullptr) {
      args->admission_batch = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--admission-cache") {
      // Optional value: a following numeric token is the log2 capacity.
      args->admission_cache_log2 = 16;
      if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(
                              argv[i + 1][0])) != 0) {
        args->admission_cache_log2 = std::atoi(argv[++i]);
      }
    } else if (arg == "--sync-compaction") {
      args->sync_compaction = true;
    } else if (arg == "--compressed-base") {
      args->compressed_base = true;
    } else if (arg == "--gate") {
      args->gate = true;
    } else if (arg == "--two-cycles") {
      args->two_cycles = true;
    } else {
      if (arg != "--help" && arg != "-h") {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      }
      return false;
    }
  }
  return !args->stream_path.empty();
}

/// Canonical text form of the final service state, for byte-equality
/// comparison across runs (the crash drill's oracle). Everything that
/// defines the served state is included: epoch, graph (base checksum +
/// delta in insertion order), base cover and the S/W edge sets. Built
/// from the backend's canonical TransversalImage, so it works — and
/// means the same thing — for the unsharded service and the sharded
/// router alike (byte-identical to the pre-GraphService dump for the
/// unsharded backend).
bool WriteStateDump(const GraphService& service, const std::string& path) {
  const TransversalImage image = service.Image();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write state dump %s\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "tdb-state v1\n"
               "epoch %llu\nuniverse %u\nevents %llu\n"
               "base_edges %llu\nbase_crc %08x\ndelta_edges %llu\n",
               static_cast<unsigned long long>(image.epoch),
               image.universe,
               static_cast<unsigned long long>(service.events_ingested()),
               static_cast<unsigned long long>(image.base_edges),
               image.base_crc,
               static_cast<unsigned long long>(image.delta.size()));
  for (const Edge& e : image.delta) {
    std::fprintf(f, "D %u %u\n", e.src, e.dst);
  }
  std::fprintf(f, "cover %zu\n", image.cover_vertices.size());
  for (VertexId v : image.cover_vertices) {
    std::fprintf(f, "C %u\n", v);
  }
  // Endpoint pairs only: edge ids are backend-scoped, and the dump's
  // whole point is byte-comparability across backends.
  auto dump_set = [&](const char* tag,
                      const std::vector<TransversalImage::EdgeEntry>& set) {
    std::fprintf(f, "%s_count %zu\n", tag, set.size());
    for (const TransversalImage::EdgeEntry& e : set) {
      std::fprintf(f, "%s %u %u\n", tag, e.src, e.dst);
    }
  };
  dump_set("S", image.covered);
  dump_set("W", image.reusable);
  std::fclose(f);
  return true;
}

/// Write-temp + rename so a concurrent reader never sees a torn dump.
bool WriteMetricsJson(MetricRegistry& registry, const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = registry.RenderJson();
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  std::signal(SIGTERM, OnShutdownSignal);
  std::signal(SIGINT, OnShutdownSignal);
  // Enable tracing before the service exists so the initial solve,
  // publish and index build are captured too.
  if (!args.trace_out.empty()) trace::SetEnabled(true);

  std::vector<TimedEdge> stream;
  Status st = LoadEdgeStreamText(args.stream_path, &stream);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot load stream: %s\n", st.ToString().c_str());
    return 1;
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const TimedEdge& a, const TimedEdge& b) {
                     return a.timestamp < b.timestamp;
                   });

  // The stream format addresses raw (non-densified) vertex ids, so the
  // base must be re-expressed over the same raw ids — LoadEdgeListText
  // densifies in first-appearance order, which would silently renumber a
  // base whose file order is not already dense.
  std::vector<Edge> base_edges;
  VertexId universe = 0;
  if (!args.base_path.empty()) {
    CsrGraph dense;
    std::vector<uint64_t> original_ids;
    st = LoadEdgeListText(args.base_path, &dense, &original_ids);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot load base: %s\n", st.ToString().c_str());
      return 1;
    }
    for (uint64_t raw : original_ids) {
      if (raw >= kInvalidVertex) {
        std::fprintf(stderr,
                     "base vertex id %llu does not fit the stream's "
                     "32-bit universe\n",
                     static_cast<unsigned long long>(raw));
        return 1;
      }
      universe = std::max(universe, static_cast<VertexId>(raw) + 1);
    }
    base_edges.reserve(dense.num_edges());
    for (EdgeId e = 0; e < dense.num_edges(); ++e) {
      base_edges.push_back(
          Edge{static_cast<VertexId>(original_ids[dense.EdgeSrc(e)]),
               static_cast<VertexId>(original_ids[dense.EdgeDst(e)])});
    }
  }
  for (const TimedEdge& e : stream) {
    universe = std::max(universe, std::max(e.src, e.dst) + 1);
  }
  CsrGraph base = CsrGraph::FromEdges(universe, std::move(base_edges));

  ServiceOptions options;
  options.cover.k = args.k;
  options.cover.include_two_cycles = args.two_cycles;
  options.compact_delta_threshold = args.compact_threshold;
  options.synchronous_compaction = args.sync_compaction;
  options.ingest_threads = args.ingest_threads;
  options.compact_time_limit_seconds = args.compact_budget;
  options.admission_cache_log2 = args.admission_cache_log2;
  options.admission_index_landmarks = args.admission_index;
  options.compressed_base = args.compressed_base;
  options.data_dir = args.data_dir;
  st = ParseAlgorithm(args.algo, &options.compact_algorithm);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  st = ParseSccAlgorithm(args.scc_algo, &options.cover.scc_algorithm);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  st = ParseDurabilityPolicy(args.durability, &options.durability);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  if (args.gate && !args.data_dir.empty()) {
    // Resume arithmetic assumes every stream event reached SubmitEdges;
    // gating drops events before ingest, so a recovered offset would
    // desynchronize the replay.
    std::fprintf(stderr, "--gate cannot be combined with --data-dir\n");
    return 2;
  }
  ShardedServiceOptions sharded_options;
  if (args.shards > 0) {
    sharded_options.base = options;
    sharded_options.base.data_dir.clear();  // the router owns the layout
    sharded_options.num_shards = args.shards;
    sharded_options.boundary_cap = args.boundary_cap;
    sharded_options.data_dir = args.data_dir;
    st = sharded_options.Validate();
  } else {
    st = options.Validate();
  }
  if (!st.ok()) {
    std::fprintf(stderr, "bad options: %s\n", st.ToString().c_str());
    return 2;
  }

  std::fprintf(stderr,
               "serving universe of %u vertices: base %llu edges, stream "
               "%zu events\n",
               universe, static_cast<unsigned long long>(base.num_edges()),
               stream.size());

  Timer setup_timer;
  std::unique_ptr<CycleBreakService> unsharded;
  std::unique_ptr<ShardedCycleBreakService> sharded;
  size_t resume_offset = 0;
  const auto report_recovery = [&](uint64_t snapshot_epoch,
                                   uint64_t replayed_batches,
                                   uint64_t replayed_events,
                                   uint64_t truncated_bytes,
                                   uint64_t events_ingested) -> bool {
    resume_offset = static_cast<size_t>(events_ingested);
    std::fprintf(stderr,
                 "recovered %s: snapshot epoch %llu + %llu journal "
                 "batches (%llu events, %llu torn bytes dropped), "
                 "resuming stream at event %zu\n",
                 args.data_dir.c_str(),
                 static_cast<unsigned long long>(snapshot_epoch),
                 static_cast<unsigned long long>(replayed_batches),
                 static_cast<unsigned long long>(replayed_events),
                 static_cast<unsigned long long>(truncated_bytes),
                 resume_offset);
    if (resume_offset > stream.size()) {
      std::fprintf(stderr,
                   "store is ahead of the stream (%zu > %zu events)\n",
                   resume_offset, stream.size());
      return false;
    }
    return true;
  };
  if (args.shards > 0) {
    if (!args.data_dir.empty()) {
      st = ShardedCycleBreakService::Open(sharded_options, &sharded);
      if (st.ok()) {
        const auto& rec = sharded->recovery_info();
        if (!report_recovery(rec.snapshot_epoch, rec.replayed_batches,
                             rec.replayed_events,
                             rec.journal_truncated_bytes,
                             sharded->events_ingested())) {
          return 1;
        }
      } else if (st.IsNotFound()) {
        st = ShardedCycleBreakService::Create(std::move(base),
                                              sharded_options, &sharded);
        if (!st.ok()) {
          std::fprintf(stderr, "cannot create store: %s\n",
                       st.ToString().c_str());
          return 1;
        }
      } else {
        std::fprintf(stderr, "cannot recover store: %s\n",
                     st.ToString().c_str());
        return 1;
      }
    } else {
      sharded = std::make_unique<ShardedCycleBreakService>(
          std::move(base), sharded_options);
    }
  } else if (!args.data_dir.empty()) {
    // An existing store is recovered; a fresh directory is initialized.
    st = CycleBreakService::Open(options, &unsharded);
    if (st.ok()) {
      const auto& rec = unsharded->recovery_info();
      if (!report_recovery(rec.snapshot_epoch, rec.replayed_batches,
                           rec.replayed_events,
                           rec.journal_truncated_bytes,
                           unsharded->events_ingested())) {
        return 1;
      }
    } else if (st.IsNotFound()) {
      st = CycleBreakService::Create(std::move(base), options,
                                     &unsharded);
      if (!st.ok()) {
        std::fprintf(stderr, "cannot create store: %s\n",
                     st.ToString().c_str());
        return 1;
      }
    } else {
      std::fprintf(stderr, "cannot recover store: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  } else {
    unsharded = std::make_unique<CycleBreakService>(std::move(base),
                                                    options);
  }
  GraphService& service =
      sharded != nullptr ? static_cast<GraphService&>(*sharded)
                         : static_cast<GraphService&>(*unsharded);
  if (service.universe() != universe) {
    std::fprintf(stderr,
                 "store universe (%u) does not match the stream's "
                 "(%u) — wrong --data-dir for this workload?\n",
                 service.universe(), universe);
    return 1;
  }
  std::fprintf(stderr, "initial solve + publish: %.3fs (epoch %llu)\n",
               setup_timer.ElapsedSeconds(),
               static_cast<unsigned long long>(service.epoch()));

  LatencyHistogram ingest_lat;
  LatencyHistogram admit_lat;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> background_queries{0};

  // ---------------------------------------------------- observability
  // Counter views over the service's existing atomics plus histogram
  // views over the locals above: registering costs one mutex'd append
  // per metric at startup and nothing per Record — the ingest and
  // admission hot paths are untouched.
  MetricRegistry& registry = MetricRegistry::Global();
  std::vector<MetricRegistry::Registration> metric_regs =
      BindServiceStats(&registry, service.raw_stats(), "tdb_service_");
  metric_regs.push_back(registry.AddHistogramView(
      "tdb_serve_ingest_batch_seconds",
      "Per-batch SubmitEdges wall-clock", &ingest_lat));
  metric_regs.push_back(registry.AddHistogramView(
      "tdb_serve_admission_seconds",
      "Per-query CheckAdmission wall-clock", &admit_lat));
  metric_regs.push_back(registry.AddGaugeFn(
      "tdb_service_epoch", "Epoch of the last published snapshot",
      [&service] { return static_cast<double>(service.epoch()); }));
  metric_regs.push_back(registry.AddGaugeFn(
      "tdb_service_delta_edges",
      "Delta edges in the published snapshot's overlay", [&service] {
        return static_cast<double>(service.delta_edges());
      }));
  if (sharded != nullptr) {
    std::vector<MetricRegistry::Registration> shard_regs =
        BindShardRouterStats(&registry, sharded->raw_router_stats(),
                             "tdb_shard_");
    for (auto& reg : shard_regs) metric_regs.push_back(std::move(reg));
  }

  MetricsHttpServer metrics_server(&registry, args.metrics_port);
  if (args.metrics_port >= 0) {
    st = metrics_server.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "metrics server: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics: http://127.0.0.1:%d/metrics\n",
                 metrics_server.port());
  }

  std::mutex dump_mu;
  std::condition_variable dump_cv;
  bool dump_stop = false;
  std::thread dumper;
  if (!args.metrics_dump.empty()) {
    dumper = std::thread([&] {
      const auto period = std::chrono::duration<double>(
          args.metrics_interval > 0 ? args.metrics_interval : 5.0);
      std::unique_lock<std::mutex> lock(dump_mu);
      while (!dump_cv.wait_for(lock, period, [&] { return dump_stop; })) {
        lock.unlock();
        if (!WriteMetricsJson(registry, args.metrics_dump)) {
          std::fprintf(stderr, "cannot write metrics dump %s\n",
                       args.metrics_dump.c_str());
        }
        lock.lock();
      }
    });
  }

  // Background admission readers: uniform random pairs over the universe,
  // each thread with a private seeded stream.
  std::vector<std::thread> readers;
  for (int t = 0; t < args.admit_threads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(args.seed + 1000 + static_cast<uint64_t>(t));
      uint64_t count = 0;
      std::vector<Edge> queries;
      while (!done.load(std::memory_order_relaxed)) {
        if (args.admission_batch > 0) {
          queries.clear();
          for (size_t q = 0; q < args.admission_batch; ++q) {
            queries.push_back(
                Edge{static_cast<VertexId>(rng.NextBounded(universe)),
                     static_cast<VertexId>(rng.NextBounded(universe))});
          }
          Timer timer;
          (void)service.CheckAdmissionBatch(queries);
          // One sample per query so percentiles stay comparable with
          // the per-query mode (batch latency / batch size).
          const double per_query =
              timer.ElapsedSeconds() / static_cast<double>(queries.size());
          for (size_t q = 0; q < queries.size(); ++q) {
            admit_lat.Record(per_query);
          }
          count += queries.size();
        } else {
          const VertexId u =
              static_cast<VertexId>(rng.NextBounded(universe));
          const VertexId v =
              static_cast<VertexId>(rng.NextBounded(universe));
          Timer timer;
          (void)service.CheckAdmission(u, v);
          admit_lat.Record(timer.ElapsedSeconds());
          ++count;
        }
      }
      background_queries.fetch_add(count, std::memory_order_relaxed);
    });
  }

  // Foreground replay: batch ingest, optionally admission-gated. In
  // drill mode the process SIGKILLs itself after the Nth batch of this
  // run — no flush, no destructor, the honest crash the recovery path
  // must survive.
  Timer run_timer;
  IngestBatcher batcher(&service, args.batch);
  uint64_t gated = 0;
  uint64_t batches_this_run = 0;
  auto after_submit = [&](const SubmitResult& r, const Timer& timer) {
    if (r.epoch == 0 && !r.status.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   r.status.ToString().c_str());
      std::exit(1);
    }
    if (r.epoch == 0) return;
    ingest_lat.Record(timer.ElapsedSeconds());
    if (args.kill_after > 0 && ++batches_this_run >= args.kill_after) {
      ::raise(SIGKILL);
    }
  };
  for (size_t i = resume_offset; i < stream.size(); ++i) {
    if (g_shutdown.load(std::memory_order_relaxed)) break;
    const TimedEdge& e = stream[i];
    if (args.gate) {
      const AdmissionVerdict verdict = service.CheckAdmission(e.src, e.dst);
      if (verdict.would_close) {
        ++gated;
        continue;
      }
    }
    Timer timer;
    after_submit(batcher.Add(e.src, e.dst), timer);
  }
  {
    Timer timer;
    after_submit(batcher.Flush(), timer);
  }
  service.WaitForCompaction();
  const double ingest_seconds = run_timer.ElapsedSeconds();
  done.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();

  const ServiceStatsSnapshot s = service.Stats();
  const TransversalImage image = service.Image();
  const double qps =
      ingest_seconds > 0
          ? static_cast<double>(s.admission_queries) / ingest_seconds
          : 0.0;
  const double eps =
      ingest_seconds > 0 ? static_cast<double>(stream.size()) / ingest_seconds
                         : 0.0;
  std::printf("== tdb_serve replay: %s ==\n", args.stream_path.c_str());
  std::printf("ingest:     %zu events in %.3fs (%.0f events/s), "
              "%llu batches, %llu inserted, %llu rejected%s\n",
              stream.size(), ingest_seconds, eps,
              static_cast<unsigned long long>(s.batches),
              static_cast<unsigned long long>(s.edges_inserted),
              static_cast<unsigned long long>(s.edges_rejected),
              args.gate ? " (gated)" : "");
  if (args.gate) {
    std::printf("gate:       %llu edges dropped as cycle-closing\n",
                static_cast<unsigned long long>(gated));
  }
  std::printf("admission:  %llu queries (%.0f/s), %llu would close an "
              "uncovered cycle\n",
              static_cast<unsigned long long>(s.admission_queries), qps,
              static_cast<unsigned long long>(s.admission_would_close));
  if (args.admission_cache_log2 > 0) {
    const uint64_t looked = s.admission_cache_hits + s.admission_cache_misses;
    const double hit_rate =
        looked > 0 ? 100.0 * static_cast<double>(s.admission_cache_hits) /
                         static_cast<double>(looked)
                   : 0.0;
    std::printf("cache:      %llu hits / %llu misses (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(s.admission_cache_hits),
                static_cast<unsigned long long>(s.admission_cache_misses),
                hit_rate);
  }
  if (args.admission_index > 0) {
    const uint64_t decided = s.index_hits + s.index_fallbacks;
    const double hit_rate =
        decided > 0 ? 100.0 * static_cast<double>(s.index_hits) /
                          static_cast<double>(decided)
                    : 0.0;
    std::printf("index:      %llu hits / %llu fallbacks (%.1f%% hit "
                "rate), %llu builds in %.3fs\n",
                static_cast<unsigned long long>(s.index_hits),
                static_cast<unsigned long long>(s.index_fallbacks),
                hit_rate, static_cast<unsigned long long>(s.index_builds),
                s.index_build_seconds);
  }
  std::printf("latency:    ingest batch p50 %.1fus p95 %.1fus p99 %.1fus | "
              "admission p50 %.1fus p95 %.1fus p99 %.1fus\n",
              ingest_lat.PercentileSeconds(0.50) * 1e6,
              ingest_lat.PercentileSeconds(0.95) * 1e6,
              ingest_lat.PercentileSeconds(0.99) * 1e6,
              admit_lat.PercentileSeconds(0.50) * 1e6,
              admit_lat.PercentileSeconds(0.95) * 1e6,
              admit_lat.PercentileSeconds(0.99) * 1e6);
  std::printf("state:      epoch %llu, %llu compactions (%llu failed), "
              "cycles covered %llu, |S| %zu, base cover %zu, delta %zu\n",
              static_cast<unsigned long long>(service.epoch()),
              static_cast<unsigned long long>(s.compactions),
              static_cast<unsigned long long>(s.compactions_failed),
              static_cast<unsigned long long>(s.cycles_covered),
              image.covered.size(), image.cover_vertices.size(),
              image.delta.size());
  if (sharded != nullptr) {
    const ShardRouterStatsSnapshot r = sharded->RouterStats();
    const double summary_rate =
        r.cross_queries > 0
            ? 100.0 * static_cast<double>(r.summary_resolved) /
                  static_cast<double>(r.cross_queries)
            : 0.0;
    std::printf(
        "router:     %d shards, %llu/%llu edges cross-shard, boundary "
        "%llu, %llu summaries (%.3fs), cross queries %llu (%.1f%% "
        "summary-resolved, %llu scatter/gather, %llu DFS fallbacks)\n",
        sharded->num_shards(),
        static_cast<unsigned long long>(r.cross_shard_edges),
        static_cast<unsigned long long>(r.edges_routed),
        static_cast<unsigned long long>(r.boundary_vertices),
        static_cast<unsigned long long>(r.summary_builds),
        r.summary_build_seconds,
        static_cast<unsigned long long>(r.cross_queries), summary_rate,
        static_cast<unsigned long long>(r.scatter_gather_probes),
        static_cast<unsigned long long>(r.dfs_fallbacks));
  }
  if (!args.data_dir.empty()) {
    std::printf("store:      %llu journal records, %llu rotations, "
                "%llu snapshots, %llu persist failures (durability %s)\n",
                static_cast<unsigned long long>(s.journal_records),
                static_cast<unsigned long long>(s.journal_rotations),
                static_cast<unsigned long long>(s.snapshots_written),
                static_cast<unsigned long long>(s.persist_failures),
                args.durability.c_str());
  }
  // Observability teardown: hold the scrape port open if asked (lets an
  // external scraper take its two samples after a short replay), then
  // stop the exporter threads, flush the final dump, and serialize the
  // trace now that every recording thread is quiescent.
  if (args.metrics_hold > 0 && args.metrics_port >= 0) {
    std::fprintf(stderr, "metrics: holding the port for %.1fs\n",
                 args.metrics_hold);
    const auto hold_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(args.metrics_hold));
    while (!g_shutdown.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < hold_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  metrics_server.Stop();
  if (dumper.joinable()) {
    {
      std::lock_guard<std::mutex> lock(dump_mu);
      dump_stop = true;
    }
    dump_cv.notify_all();
    dumper.join();
    if (!WriteMetricsJson(registry, args.metrics_dump)) {
      std::fprintf(stderr, "cannot write metrics dump %s\n",
                   args.metrics_dump.c_str());
      return 1;
    }
  }
  if (!args.trace_out.empty()) {
    trace::SetEnabled(false);
    st = trace::WriteChromeTrace(args.trace_out);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot write trace: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace:      %llu spans -> %s\n",
                 static_cast<unsigned long long>(trace::TotalSpanCount()),
                 args.trace_out.c_str());
  }
  if (!args.state_dump.empty() &&
      !WriteStateDump(service, args.state_dump)) {
    return 1;
  }
  return 0;
}
