// tdb_cover: command-line front end.
//
//   tdb_cover --graph edges.txt --k 5 --algo TDB++ [--verify]
//             [--two-cycles] [--unconstrained] [--time-limit 60]
//             [--order deg-asc|id|deg-desc|random] [--threads N]
//             [--intra-threshold N] [--scc-algo tarjan|fwbw|uf]
//             [--output cover.txt] [--stats] [--stats-json FILE]
//
// Reads a SNAP-style text edge list (or TDBG binary with --binary),
// computes a hop-constrained cycle cover, and prints it (original vertex
// ids) one per line to stdout or --output.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/solver.h"
#include "core/verifier.h"
#include "graph/compressed_csr.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "util/metrics.h"

namespace {

using namespace tdb;

struct CliArgs {
  std::string graph_path;
  std::string output_path;
  std::string algo = "TDB++";
  std::string order = "deg-asc";
  std::string scc_algo = "tarjan";
  std::string stats_json;
  uint32_t k = 5;
  int threads = 1;
  VertexId intra_threshold = 0;  // 0 = keep the library default
  bool binary = false;
  bool compressed_base = false;
  bool verify = false;
  bool two_cycles = false;
  bool unconstrained = false;
  bool stats = false;
  double time_limit = 0.0;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: tdb_cover --graph FILE [options]\n"
      "  --graph FILE        SNAP-style edge list (or TDBG with --binary)\n"
      "  --binary            input is TDBG binary\n"
      "  --k N               hop constraint (default 5)\n"
      "  --algo NAME         BUR | BUR+ | TDB | TDB+ | TDB++ | DARC-DV\n"
      "  --order NAME        deg-asc | id | deg-desc | random\n"
      "  --threads N         SCC-parallel workers (0 = all cores, "
      "default 1)\n"
      "  --intra-threshold N  min SCC size for in-place solving with\n"
      "                      intra-SCC parallel probing (default 2048)\n"
      "  --scc-algo NAME     condensation strategy: tarjan | fwbw\n"
      "                      (parallel trim + forward-backward) | uf\n"
      "                      (concurrent union-find UFSCC; the cover is\n"
      "                      identical for all three)\n"
      "  --compressed-base   solve from the delta/varint CompressedCsr\n"
      "                      backend (identical cover, smaller residency)\n"
      "  --two-cycles        also cover 2-cycles\n"
      "  --unconstrained     cover cycles of every length\n"
      "  --time-limit SEC    wall-clock budget (0 = unlimited)\n"
      "  --verify            check feasibility + minimality afterwards\n"
      "  --stats             print solver statistics to stderr\n"
      "  --stats-json FILE   write CoverStats + SccStats as JSON (the\n"
      "                      metric-registry dump schema)\n"
      "  --output FILE       write the cover here instead of stdout\n");
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--graph") {
      const char* v = next();
      if (v == nullptr) return false;
      args->graph_path = v;
    } else if (arg == "--output") {
      const char* v = next();
      if (v == nullptr) return false;
      args->output_path = v;
    } else if (arg == "--algo") {
      const char* v = next();
      if (v == nullptr) return false;
      args->algo = v;
    } else if (arg == "--order") {
      const char* v = next();
      if (v == nullptr) return false;
      args->order = v;
    } else if (arg == "--k") {
      const char* v = next();
      if (v == nullptr) return false;
      args->k = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      // Strict parse: atoi's silent 0 on garbage would mean "all cores".
      char* end = nullptr;
      args->threads = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "invalid --threads value: %s\n", v);
        return false;
      }
    } else if (arg == "--intra-threshold") {
      const char* v = next();
      if (v == nullptr) return false;
      // strtol rather than strtoul: the latter silently wraps "-1" into
      // a huge threshold instead of erroring.
      char* end = nullptr;
      const long parsed = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || parsed < 1 ||
          parsed > static_cast<long>(0xFFFFFFFEu)) {
        std::fprintf(stderr, "invalid --intra-threshold value: %s\n", v);
        return false;
      }
      args->intra_threshold = static_cast<VertexId>(parsed);
    } else if (arg == "--scc-algo") {
      const char* v = next();
      if (v == nullptr) return false;
      args->scc_algo = v;
    } else if (arg == "--time-limit") {
      const char* v = next();
      if (v == nullptr) return false;
      args->time_limit = std::atof(v);
    } else if (arg == "--binary") {
      args->binary = true;
    } else if (arg == "--compressed-base") {
      args->compressed_base = true;
    } else if (arg == "--verify") {
      args->verify = true;
    } else if (arg == "--two-cycles") {
      args->two_cycles = true;
    } else if (arg == "--unconstrained") {
      args->unconstrained = true;
    } else if (arg == "--stats") {
      args->stats = true;
    } else if (arg == "--stats-json") {
      const char* v = next();
      if (v == nullptr) return false;
      args->stats_json = v;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !args->graph_path.empty();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }

  CsrGraph graph;
  std::vector<uint64_t> original_ids;
  Status st = args.binary
                  ? LoadBinary(args.graph_path, &graph)
                  : LoadEdgeListText(args.graph_path, &graph, &original_ids);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot load graph: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "loaded: %s\n",
               ComputeStats(graph).ToString().c_str());

  CoverAlgorithm algo;
  st = ParseAlgorithm(args.algo, &algo);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }

  CoverOptions options;
  options.k = args.k;
  options.include_two_cycles = args.two_cycles;
  options.unconstrained = args.unconstrained;
  options.time_limit_seconds = args.time_limit;
  options.num_threads = args.threads;
  if (args.intra_threshold > 0) {
    options.min_intra_parallel_size = args.intra_threshold;
  }
  st = ParseSccAlgorithm(args.scc_algo, &options.scc_algorithm);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  if (args.order == "deg-asc") {
    options.order = VertexOrder::kByDegreeAsc;
  } else if (args.order == "id") {
    options.order = VertexOrder::kById;
  } else if (args.order == "deg-desc") {
    options.order = VertexOrder::kByDegreeDesc;
  } else if (args.order == "random") {
    options.order = VertexOrder::kRandom;
  } else {
    std::fprintf(stderr, "unknown order: %s\n", args.order.c_str());
    return 2;
  }

  options.compressed_base = args.compressed_base;
  CompressedCsr cgraph;
  if (args.compressed_base) {
    cgraph = CompressedCsr::FromCsr(graph);
  }
  if (args.stats) {
    const GraphStats gs = ComputeStats(graph);
    std::fprintf(stderr, "%s\n", gs.FootprintString().c_str());
    if (args.compressed_base) {
      const CompressedCsrFootprint fp = cgraph.MemoryFootprint();
      std::fprintf(
          stderr,
          "compressed_bytes=%llu (offsets=%llu out_stream=%llu "
          "out_headers=%llu in_stream=%llu in_headers=%llu) ratio=%.2fx\n",
          static_cast<unsigned long long>(fp.total()),
          static_cast<unsigned long long>(fp.offset_bytes),
          static_cast<unsigned long long>(fp.out_stream_bytes),
          static_cast<unsigned long long>(fp.out_header_bytes),
          static_cast<unsigned long long>(fp.in_stream_bytes),
          static_cast<unsigned long long>(fp.in_header_bytes),
          fp.total() > 0 ? static_cast<double>(gs.total_bytes()) /
                               static_cast<double>(fp.total())
                         : 0.0);
    }
  }

  CoverResult result = args.compressed_base
                           ? SolveCycleCover(cgraph, algo, options)
                           : SolveCycleCover(graph, algo, options);
  if (!result.status.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 result.status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "%s k=%u: cover of %zu vertices in %.3fs\n",
               AlgorithmName(algo), args.k, result.cover.size(),
               result.stats.elapsed_seconds);
  if (args.stats) {
    std::fprintf(stderr,
                 "searches=%llu cycles=%llu expansions=%llu "
                 "block_prunes=%llu bfs_filtered=%llu pruned=%llu\n",
                 static_cast<unsigned long long>(result.stats.searches),
                 static_cast<unsigned long long>(result.stats.cycles_found),
                 static_cast<unsigned long long>(result.stats.expansions),
                 static_cast<unsigned long long>(result.stats.block_prunes),
                 static_cast<unsigned long long>(result.stats.bfs_filtered),
                 static_cast<unsigned long long>(
                     result.stats.prune_removed));
    std::fprintf(stderr,
                 "scc: %s %.3fs, %llu components, trim_peeled=%llu "
                 "fwbw_partitions=%llu tarjan_partitions=%llu\n",
                 SccAlgorithmName(options.scc_algorithm),
                 result.stats.scc_seconds,
                 static_cast<unsigned long long>(
                     result.stats.scc_components),
                 static_cast<unsigned long long>(
                     result.stats.scc_trim_peeled),
                 static_cast<unsigned long long>(
                     result.stats.scc_fwbw_partitions),
                 static_cast<unsigned long long>(
                     result.stats.scc_tarjan_partitions));
  }

  if (args.verify) {
    VerifyReport report = VerifyCover(graph, result.cover, options);
    std::fprintf(stderr, "verify: %s\n", report.ToString().c_str());
    if (!report.feasible) return 1;
  }

  if (!args.stats_json.empty()) {
    // Populate a private registry and reuse its JSON renderer, so the
    // dump shares its schema with tdb_serve's /metrics.json and
    // --metrics-dump files.
    MetricRegistry registry;
    const CoverStats& cs = result.stats;
    const auto counter = [&](const char* name, const char* help,
                             uint64_t value) {
      registry
          .AddCounter(std::string("tdb_cover_") + name + "_total", help)
          ->Increment(value);
    };
    counter("searches", "Candidate validations / cycle searches",
            cs.searches);
    counter("cycles_found", "Qualifying cycles materialized",
            cs.cycles_found);
    counter("expansions", "Adjacency entries scanned", cs.expansions);
    counter("block_prunes", "Extensions suppressed by block bounds",
            cs.block_prunes);
    counter("bfs_filtered", "Candidates discharged by the BFS filter",
            cs.bfs_filtered);
    counter("scc_filtered", "Candidates discharged by the SCC prefilter",
            cs.scc_filtered);
    counter("prune_removed", "Vertices removed by minimal pruning",
            cs.prune_removed);
    counter("intra_probes", "Speculative intra-component validations",
            cs.intra_probes);
    counter("intra_restarts", "Stale speculative validations redone",
            cs.intra_restarts);
    counter("components_timed_out",
            "Components that exhausted their budget share",
            cs.components_timed_out);
    counter("scc_components", "Components from condensation",
            cs.scc_components);
    counter("scc_trim_peeled", "Vertices peeled as trivial SCCs",
            cs.scc_trim_peeled);
    counter("scc_fwbw_partitions", "FW-BW pivot partitions",
            cs.scc_fwbw_partitions);
    counter("scc_tarjan_partitions", "Sequential-Tarjan partitions",
            cs.scc_tarjan_partitions);
    registry
        .AddGauge("tdb_cover_elapsed_seconds", "Solve wall-clock seconds")
        ->Set(cs.elapsed_seconds);
    registry
        .AddGauge("tdb_cover_scc_seconds",
                  "Wall-clock seconds in SCC condensation")
        ->Set(cs.scc_seconds);
    registry.AddGauge("tdb_cover_cover_size", "Cover size in vertices")
        ->Set(static_cast<double>(result.cover.size()));
    const std::string body = registry.RenderJson();
    std::FILE* jf = std::fopen(args.stats_json.c_str(), "w");
    if (jf == nullptr ||
        std::fwrite(body.data(), 1, body.size(), jf) != body.size()) {
      std::fprintf(stderr, "cannot write %s\n", args.stats_json.c_str());
      if (jf != nullptr) std::fclose(jf);
      return 1;
    }
    std::fclose(jf);
  }

  std::FILE* out = stdout;
  if (!args.output_path.empty()) {
    out = std::fopen(args.output_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", args.output_path.c_str());
      return 1;
    }
  }
  for (VertexId v : result.cover) {
    const unsigned long long id =
        v < original_ids.size() ? original_ids[v] : v;
    std::fprintf(out, "%llu\n", id);
  }
  if (out != stdout) std::fclose(out);
  return 0;
}
