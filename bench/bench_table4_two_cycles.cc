// Reproduces Table IV: TDB++ cover size at k = 5 with and without 2-cycles
// included in the constraint family, per small dataset, with the growth
// ratio. Reciprocal-edge-heavy proxies (ASC, SAD, CT, ...) should show the
// largest ratios, as in the paper.
#include <cstdio>

#include "bench_runner.h"
#include "datasets.h"
#include "table_printer.h"

int main() {
  using namespace tdb;
  using namespace tdb::bench;

  const double scale = BenchScale();
  const double timeout = BenchTimeout(30.0);
  constexpr uint32_t kHop = 5;

  std::printf(
      "== Table IV: cover size with/without 2-cycles, k = %u "
      "(scale %.3g) ==\n",
      kHop, scale);
  TablePrinter table({"Name", "No 2-cycle", "With 2-cycle", "Ratio"});
  for (const DatasetSpec& spec : SmallDatasets()) {
    CsrGraph g = BuildProxy(spec, scale);
    Cell without = RunCovered(g, CoverAlgorithm::kTdbPlusPlus, kHop, timeout,
                              /*include_two_cycles=*/false);
    Cell with = RunCovered(g, CoverAlgorithm::kTdbPlusPlus, kHop, timeout,
                           /*include_two_cycles=*/true);
    const bool bad = without.timed_out || with.timed_out ||
                     without.failed || with.failed;
    char ratio[32];
    if (!bad && without.cover_size > 0) {
      std::snprintf(ratio, sizeof(ratio), "%.2f",
                    static_cast<double>(with.cover_size) /
                        static_cast<double>(without.cover_size));
    } else {
      std::snprintf(ratio, sizeof(ratio), "-");
    }
    table.AddRow({spec.name, FormatCount(without.cover_size, bad),
                  FormatCount(with.cover_size, bad), ratio});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): with-2-cycle covers ~3x larger on\n"
      "average; highest ratios on reciprocity-heavy graphs (ASC, SAD,\n"
      "CT), lowest on nearly acyclic-in-pairs graphs (GNU, WKV).\n");
  return 0;
}
