#include "datasets.h"

#include <algorithm>
#include <cstdlib>

#include "graph/generators.h"
#include "util/check.h"

namespace tdb::bench {

namespace {

// Proxy sizes are chosen so the full Table III / Figure 6 sweeps finish on
// a single core in minutes while preserving each dataset's character:
// density ordering, degree skew, and reciprocity mirror Table II/IV.
// Reciprocity values are tuned to the Table IV "with 2-cycle" ratios
// (e.g. ASC 8.64 -> nearly symmetric; GNU 1.15 -> almost none).
const std::vector<DatasetSpec>& Registry() {
  static const std::vector<DatasetSpec> kDatasets = {
      // name   full            |V|      |E|      davg   n     theta recip large
      {"WKV", "Wiki-Vote", 7.0e3, 1.04e5, 29.1, 1000, 0.72, 0.08, false},
      {"ASC", "as-caida", 2.6e4, 1.07e5, 8.1, 2600, 0.65, 0.90, false},
      {"GNU", "Gnutella31", 6.3e4, 1.48e5, 4.7, 4000, 0.50, 0.0003, false},
      {"EU", "Email-Euall", 2.65e5, 4.20e5, 3.2, 8000, 0.80, 0.0017, false},
      {"SAD", "Slashdot0902", 8.2e4, 9.48e5, 23.1, 2400, 0.70, 0.95, false},
      {"WND", "web-NotreDame", 3.25e5, 1.5e6, 9.2, 8000, 0.75, 0.015, false},
      {"CT", "citeseer", 3.84e5, 1.7e6, 9.1, 8000, 0.68, 0.10, false},
      {"WST", "webStanford", 2.81e5, 2.3e6, 16.4, 5000, 0.75, 0.30, false},
      {"LOAN", "prosper-loans", 8.9e4, 3.4e6, 76.1, 1200, 0.62, 0.80, false},
      {"WIT", "Wiki-Talk", 2.4e6, 5.0e6, 4.2, 16000, 0.85, 0.004, false},
      {"WGO", "webGoogle", 8.75e5, 5.1e6, 11.7, 10000, 0.70, 0.012, false},
      {"WBS", "webBerkStan", 6.85e5, 7.6e6, 22.2, 6000, 0.75, 0.30, false},
      {"FLK", "Flickr", 2.3e6, 3.31e7, 28.8, 16000, 0.75, 0.40, true},
      {"LJ", "LiverJournal", 1.06e7, 1.12e8, 21.0, 30000, 0.70, 0.60, true},
      {"WKP", "Wikipedia", 1.82e7, 1.72e8, 18.85, 40000, 0.75, 0.35, true},
      {"TW", "Twitter(WWW)", 4.16e7, 1.47e9, 70.5, 20000, 0.78, 0.25, true},
  };
  return kDatasets;
}

uint64_t SeedFor(const DatasetSpec& spec) {
  // Stable per-dataset seed derived from the abbreviation.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const char* p = spec.name; *p != '\0'; ++p) {
    h = (h ^ static_cast<uint64_t>(*p)) * 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

VertexId DatasetSpec::ProxyVertices(double scale) const {
  double n = static_cast<double>(proxy_n) * scale;
  return static_cast<VertexId>(std::max(16.0, n));
}

EdgeId DatasetSpec::ProxyEdges(double scale) const {
  const double n = ProxyVertices(scale);
  return static_cast<EdgeId>(std::max(32.0, n * paper_davg / 2.0));
}

const std::vector<DatasetSpec>& AllDatasets() { return Registry(); }

std::vector<DatasetSpec> SmallDatasets() {
  std::vector<DatasetSpec> out;
  for (const DatasetSpec& d : Registry()) {
    if (!d.large) out.push_back(d);
  }
  return out;
}

const DatasetSpec* FindDataset(const std::string& name) {
  for (const DatasetSpec& d : Registry()) {
    if (name == d.name) return &d;
  }
  return nullptr;
}

CsrGraph BuildProxy(const DatasetSpec& spec, double scale) {
  PowerLawParams params;
  params.n = spec.ProxyVertices(scale);
  params.m = spec.ProxyEdges(scale);
  params.theta = spec.theta;
  params.reciprocity = spec.reciprocity;
  params.seed = SeedFor(spec);
  return GeneratePowerLaw(params);
}

double BenchScale() {
  const char* env = std::getenv("TDB_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  TDB_CHECK_MSG(v > 0.0, "TDB_BENCH_SCALE must be positive, got %s", env);
  return v;
}

}  // namespace tdb::bench
