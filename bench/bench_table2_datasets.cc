// Reproduces Table II: dataset statistics. Prints, for every proxy, the
// paper's published numbers next to the generated proxy's measured
// statistics so the scale-down factor and preserved shape are visible.
#include <cstdio>

#include "datasets.h"
#include "graph/graph_stats.h"
#include "table_printer.h"
#include "util/timer.h"

int main() {
  using namespace tdb;
  using namespace tdb::bench;

  const double scale = BenchScale();
  std::printf("== Table II: dataset statistics (proxy scale %.3g) ==\n",
              scale);
  TablePrinter table({"Name", "Dataset", "paper |V|", "paper |E|",
                      "paper davg", "proxy |V|", "proxy |E|", "proxy davg",
                      "reciprocity", "gen s"});
  for (const DatasetSpec& spec : AllDatasets()) {
    Timer timer;
    CsrGraph g = BuildProxy(spec, scale);
    const double gen_seconds = timer.ElapsedSeconds();
    GraphStats s = ComputeStats(g);
    char davg_paper[32], davg_proxy[32], recip[32];
    std::snprintf(davg_paper, sizeof(davg_paper), "%.1f", spec.paper_davg);
    std::snprintf(davg_proxy, sizeof(davg_proxy), "%.1f", s.avg_degree);
    std::snprintf(recip, sizeof(recip), "%.2f", s.reciprocity);
    table.AddRow({spec.name, spec.full_name,
                  FormatMagnitude(spec.paper_vertices),
                  FormatMagnitude(spec.paper_edges), davg_paper,
                  FormatMagnitude(static_cast<double>(s.num_vertices)),
                  FormatMagnitude(static_cast<double>(s.num_edges)),
                  davg_proxy, recip, FormatSeconds(gen_seconds, false)});
  }
  table.Print();
  return 0;
}
