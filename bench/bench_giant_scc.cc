// Thread-scaling sweep on a graph that is ONE giant SCC — the adversarial
// shape for across-component parallelism (a single component pins a
// single worker) and the paper's target workload shape (billion-scale
// transaction graphs are dominated by one huge SCC). This bench measures
// the intra-component speculative probing engine: candidates validate in
// parallel batches against a frozen mask and commit sequentially in
// canonical order, so every cover is asserted bit-identical to the
// 1-thread run — a determinism violation exits non-zero and fails CI.
//
//   TDB_BENCH_N            vertices                     (default 3000)
//   TDB_BENCH_DEGREE       extra chords per vertex      (default 10)
//   TDB_BENCH_K            hop constraint               (default 5)
//   TDB_BENCH_REPEATS      runs per cell, best kept     (default 3)
//   TDB_BENCH_MIN_SPEEDUP  if set, fail unless TDB++ at 4 threads
//                          reaches this speedup (CI perf floor; leave
//                          unset on single-core machines)
//
// `--json <path>` additionally writes machine-readable rows for
// tools/check_bench_regression.py.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_runner.h"
#include "core/solver.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "graph/scc.h"
#include "table_printer.h"
#include "util/thread_pool.h"

namespace {

using namespace tdb;
using namespace tdb::bench;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const VertexId n = static_cast<VertexId>(EnvOr("TDB_BENCH_N", 3000));
  const VertexId degree =
      static_cast<VertexId>(EnvOr("TDB_BENCH_DEGREE", 10));
  const uint32_t k = static_cast<uint32_t>(EnvOr("TDB_BENCH_K", 5));
  const int repeats = static_cast<int>(EnvOr("TDB_BENCH_REPEATS", 3));

  CsrGraph g = GenerateChordedCycle(n, degree, /*seed=*/97);
  const SccResult scc = ComputeScc(g);
  if (scc.num_components != 1) {
    std::fprintf(stderr, "expected one SCC, got %u\n", scc.num_components);
    return 1;
  }
  std::printf(
      "== Giant-SCC scaling: intra-component parallel probing "
      "(%u vertices, %llu edges, 1 SCC, k=%u, %d hardware threads) ==\n",
      g.num_vertices(), static_cast<unsigned long long>(g.num_edges()), k,
      ThreadPool::HardwareThreads());

  JsonSink json("giant_scc");
  json.BeginRow();
  json.Str("row", "params");
  json.Num("n", static_cast<uint64_t>(n));
  json.Num("degree", static_cast<uint64_t>(degree));
  json.Num("k", static_cast<uint64_t>(k));

  bool ok = true;
  for (CoverAlgorithm algo :
       {CoverAlgorithm::kTdbPlusPlus, CoverAlgorithm::kBur}) {
    CoverOptions opts;
    opts.k = k;
    opts.min_intra_parallel_size = 2;  // always probe in place

    TablePrinter table({"algo", "threads", "seconds", "speedup", "probes",
                        "restarts", "cover"});
    double base_seconds = 0.0;
    std::vector<VertexId> base_cover;
    for (int threads : {1, 2, 4, 8}) {
      opts.num_threads = threads;
      // Best of `repeats`: scheduling noise only ever inflates a run.
      double best_seconds = 0.0;
      CoverResult r;
      for (int rep = 0; rep < repeats; ++rep) {
        r = SolveCycleCover(g, algo, opts);
        if (!r.status.ok()) {
          std::fprintf(stderr, "solve failed: %s\n",
                       r.status.ToString().c_str());
          return 1;
        }
        if (rep == 0 || r.stats.elapsed_seconds < best_seconds) {
          best_seconds = r.stats.elapsed_seconds;
        }
      }
      if (threads == 1) {
        base_seconds = best_seconds;
        base_cover = r.cover;
      } else if (r.cover != base_cover) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s cover at %d threads "
                     "differs from the sequential cover\n",
                     AlgorithmName(algo), threads);
        ok = false;
      }
      char seconds[32], speedup[32];
      std::snprintf(seconds, sizeof seconds, "%.3f", best_seconds);
      std::snprintf(speedup, sizeof speedup, "%.2fx",
                    base_seconds / best_seconds);
      table.AddRow({AlgorithmName(algo), std::to_string(threads), seconds,
                    speedup, FormatCount(r.stats.intra_probes),
                    FormatCount(r.stats.intra_restarts),
                    FormatCount(r.cover.size())});
      json.BeginRow();
      json.Str("algo", AlgorithmName(algo));
      json.Num("threads", static_cast<uint64_t>(threads));
      json.Num("seconds", best_seconds);
      json.Num("speedup", base_seconds / best_seconds);
      json.Num("cover", static_cast<uint64_t>(r.cover.size()));
      if (algo == CoverAlgorithm::kTdbPlusPlus && threads == 4) {
        if (const char* floor_env = std::getenv("TDB_BENCH_MIN_SPEEDUP")) {
          const double floor = std::atof(floor_env);
          const double speedup = base_seconds / best_seconds;
          if (speedup < floor) {
            std::fprintf(stderr,
                         "SPEEDUP REGRESSION: TDB++ at 4 threads reached "
                         "%.2fx, below the %.2fx floor\n",
                         speedup, floor);
            ok = false;
          }
        }
      }
    }
    table.Print();
  }

  if (!json.Write(JsonSink::PathFromArgs(argc, argv))) ok = false;
  return ok ? 0 : 1;
}
