// Sharded serving throughput: the N-shard router vs the unsharded
// service on a block-clustered workload, swept over shard counts.
//
// Each row replays the identical deterministic workload — a base graph of
// dense intra-block clusters plus sparse cross-block bridges (the shape
// sharding is built for: the partition keeps id-blocks together, so most
// edges stay shard-local and the boundary stays small) and a seeded edge
// stream in the same mix, ingested in batches with synchronous
// compactions. A fixed 4 reader threads then fire batched admission
// queries over the post-ingest state.
//
// Three hard-fails, mirroring bench_service_throughput:
//   * determinism — every row's final transversal image digest AND
//     verdict bitvector must be byte-identical to the unsharded oracle's;
//     sharding changes placement, never results;
//   * summary coverage — for every multi-shard row, the share of
//     cross-shard admissions resolved by the boundary summaries (no
//     scatter/gather union sweep) must meet
//     TDB_BENCH_SHARDED_MIN_SUMMARY_RATE (default 0.80, the ISSUE 10
//     acceptance floor; set 0 to disable);
//   * baseline rows — deterministic identity keys (epochs, compactions,
//     cross_edges, cross_queries, summary_resolved) pin the routing and
//     resolution behaviour in bench/baselines/sharded_throughput.json.
//
// Knobs: TDB_BENCH_SHARDED_N (vertices), TDB_BENCH_SHARDED_BASE_M
// (intra-block base edges), TDB_BENCH_SHARDED_BRIDGES (cross-block base
// edges), TDB_BENCH_SHARDED_STREAM_M, TDB_BENCH_SHARDED_BATCH,
// TDB_BENCH_SHARDED_ADMIT_Q, TDB_BENCH_SHARDED_ADMIT_BATCH.
// --json PATH emits rows for tools/check_bench_regression.py.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_runner.h"
#include "graph/csr_graph.h"
#include "service/cycle_break_service.h"
#include "service/graph_service.h"
#include "service/sharded_service.h"
#include "table_printer.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace tdb;
using namespace tdb::bench;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? static_cast<uint64_t>(std::atoll(env)) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const VertexId n =
      static_cast<VertexId>(EnvOr("TDB_BENCH_SHARDED_N", 4096));
  const EdgeId base_m = EnvOr("TDB_BENCH_SHARDED_BASE_M", 12000);
  const EdgeId bridges = EnvOr("TDB_BENCH_SHARDED_BRIDGES", 400);
  const EdgeId stream_m = EnvOr("TDB_BENCH_SHARDED_STREAM_M", 8000);
  const size_t batch = EnvOr("TDB_BENCH_SHARDED_BATCH", 256);
  const uint64_t admit_q = EnvOr("TDB_BENCH_SHARDED_ADMIT_Q", 40000);
  const size_t admit_batch = EnvOr("TDB_BENCH_SHARDED_ADMIT_BATCH", 256);
  const double min_summary_rate = [] {
    const char* env = std::getenv("TDB_BENCH_SHARDED_MIN_SUMMARY_RATE");
    return env != nullptr ? std::atof(env) : 0.80;
  }();
  constexpr uint32_t kHop = 4;
  constexpr uint32_t kBlockBits = 4;  // partition blocks of 16 vertices
  constexpr int kAdmitThreads = 4;
  const VertexId block = 1u << kBlockBits;
  const VertexId blocks = n >> kBlockBits;

  // Deterministic block-clustered workload shared by every row: edges are
  // intra-block unless the generator rolls a bridge.
  const auto clustered_edge = [&](Rng& rng, bool bridge) {
    if (bridge) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (u == v) v = (v + 1) % n;
      return Edge{u, v};
    }
    const VertexId b = static_cast<VertexId>(rng.NextBounded(blocks));
    const VertexId u = b * block + static_cast<VertexId>(rng.NextBounded(block));
    VertexId v = b * block + static_cast<VertexId>(rng.NextBounded(block));
    if (u == v) v = b * block + (v - b * block + 1) % block;
    return Edge{u, v};
  };
  std::vector<Edge> base_edges;
  {
    Rng rng(7);
    base_edges.reserve(base_m + bridges);
    for (EdgeId i = 0; i < base_m; ++i) {
      base_edges.push_back(clustered_edge(rng, false));
    }
    for (EdgeId i = 0; i < bridges; ++i) {
      base_edges.push_back(clustered_edge(rng, true));
    }
  }
  const CsrGraph base = CsrGraph::FromEdges(n, base_edges);
  std::vector<Edge> stream;
  {
    Rng rng(11);
    stream.reserve(stream_m);
    for (EdgeId i = 0; i < stream_m; ++i) {
      stream.push_back(clustered_edge(rng, rng.NextBounded(10) == 0));
    }
  }
  std::vector<Edge> admit_queries;
  {
    Rng rng(900);
    admit_queries.reserve(admit_q);
    for (uint64_t i = 0; i < admit_q; ++i) {
      admit_queries.push_back(clustered_edge(rng, rng.NextBounded(4) == 0));
    }
  }

  // Backend-neutral content digest (same mix as bench_service_throughput).
  const auto transversal_digest = [](const TransversalImage& image) {
    uint64_t digest = 1469598103934665603ull;  // FNV-1a
    const auto mix = [&digest](uint64_t x) {
      digest = (digest ^ x) * 1099511628211ull;
    };
    std::vector<std::pair<VertexId, VertexId>> s_edges;
    s_edges.reserve(image.covered.size());
    for (const auto& e : image.covered) s_edges.push_back({e.src, e.dst});
    std::sort(s_edges.begin(), s_edges.end());
    for (const auto& [u, v] : s_edges) {
      mix(u);
      mix(v);
    }
    for (VertexId v : image.cover_vertices) mix(v);
    mix(image.delta.size());
    return digest;
  };

  // Ingest the stream, then fire the admission sweep; returns ingest and
  // admission wall seconds plus the verdict bits for cross-row
  // comparison. Drives the backend-agnostic interface only.
  const auto run_backend = [&](GraphService& service,
                               std::vector<uint8_t>* verdicts,
                               double* admit_seconds) {
    Timer ingest_timer;
    for (size_t at = 0; at < stream.size(); at += batch) {
      const size_t len = std::min(batch, stream.size() - at);
      service.SubmitEdges(std::span<const Edge>(stream.data() + at, len));
    }
    const double ingest_seconds = ingest_timer.ElapsedSeconds();

    verdicts->assign(admit_queries.size(), 0);
    Timer admit_timer;
    std::vector<std::thread> workers;
    workers.reserve(kAdmitThreads);
    const size_t per =
        (admit_queries.size() + kAdmitThreads - 1) / kAdmitThreads;
    for (int t = 0; t < kAdmitThreads; ++t) {
      workers.emplace_back([&, t] {
        const size_t begin = std::min(per * t, admit_queries.size());
        const size_t end = std::min(begin + per, admit_queries.size());
        for (size_t at = begin; at < end; at += admit_batch) {
          const size_t len = std::min(admit_batch, end - at);
          const std::vector<AdmissionVerdict> out =
              service.CheckAdmissionBatch(
                  std::span<const Edge>(admit_queries.data() + at, len));
          for (size_t j = 0; j < len; ++j) {
            (*verdicts)[at + j] = out[j].would_close ? 1 : 0;
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    *admit_seconds = admit_timer.ElapsedSeconds();
    return ingest_seconds;
  };

  std::printf("== Sharded serving: ingest %llu edges + %llu admissions "
              "(n=%u, %u blocks, k=%u) ==\n",
              static_cast<unsigned long long>(stream_m),
              static_cast<unsigned long long>(admit_q), n, blocks, kHop);
  JsonSink json("sharded_throughput");
  json.BeginRow();
  json.Str("row", "params");
  json.Num("n", static_cast<uint64_t>(n));
  json.Num("base_m", base_m);
  json.Num("bridges", bridges);
  json.Num("stream_m", stream_m);
  json.Num("batch", static_cast<uint64_t>(batch));
  json.Num("admit_q", admit_q);
  json.Num("admit_batch", static_cast<uint64_t>(admit_batch));
  json.Num("admit_threads", static_cast<uint64_t>(kAdmitThreads));
  json.Num("k", static_cast<uint64_t>(kHop));
  json.Num("block_bits", static_cast<uint64_t>(kBlockBits));

  // The unsharded oracle anchors every determinism check.
  std::vector<uint8_t> oracle_verdicts;
  uint64_t oracle_digest = 0;
  uint64_t oracle_cover = 0;
  {
    ServiceOptions options;
    options.cover.k = kHop;
    options.compact_delta_threshold = 2048;
    options.synchronous_compaction = true;
    CsrGraph base_copy = base;
    CycleBreakService oracle(std::move(base_copy), options);
    double admit_seconds = 0;
    run_backend(oracle, &oracle_verdicts, &admit_seconds);
    const TransversalImage image = oracle.Image();
    oracle_digest = transversal_digest(image);
    oracle_cover = image.covered.size() + image.cover_vertices.size();
  }

  TablePrinter table({"shards", "ingest s", "ingest eps", "admit s",
                      "admit qps", "cover", "cross edges", "cross queries",
                      "summary rate"});
  bool determinism_ok = true;
  bool summary_ok = true;
  for (const int shards : {1, 2, 4}) {
    ShardedServiceOptions options;
    options.base.cover.k = kHop;
    options.base.compact_delta_threshold = 2048;
    options.base.synchronous_compaction = true;
    options.base.ingest_threads = 4;
    options.num_shards = shards;
    options.partition_block_bits = kBlockBits;
    options.boundary_cap = 1 << 16;
    CsrGraph base_copy = base;
    ShardedCycleBreakService service(std::move(base_copy), options);
    std::vector<uint8_t> verdicts;
    double admit_seconds = 0;
    const double ingest_seconds =
        run_backend(service, &verdicts, &admit_seconds);

    const TransversalImage image = service.Image();
    const uint64_t digest = transversal_digest(image);
    const uint64_t cover =
        image.covered.size() + image.cover_vertices.size();
    if (digest != oracle_digest || verdicts != oracle_verdicts) {
      determinism_ok = false;
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: %d-shard row diverged from the "
                   "unsharded oracle (digest %s, verdicts %s)\n",
                   shards, digest == oracle_digest ? "ok" : "DRIFTED",
                   verdicts == oracle_verdicts ? "ok" : "DRIFTED");
    }

    const ServiceStatsSnapshot stats = service.Stats();
    const ShardRouterStatsSnapshot router = service.RouterStats();
    const double summary_rate =
        router.cross_queries > 0
            ? static_cast<double>(router.summary_resolved) /
                  static_cast<double>(router.cross_queries)
            : 1.0;
    if (shards > 1 && min_summary_rate > 0 &&
        summary_rate < min_summary_rate) {
      summary_ok = false;
      std::fprintf(stderr,
                   "SUMMARY RATE VIOLATION: %d shards resolved %.1f%% of "
                   "cross-shard admissions by summary < floor %.1f%%\n",
                   shards, 100.0 * summary_rate, 100.0 * min_summary_rate);
    }

    const double eps = ingest_seconds > 0
                           ? static_cast<double>(stream.size()) /
                                 ingest_seconds
                           : 0;
    const double qps =
        admit_seconds > 0
            ? static_cast<double>(admit_queries.size()) / admit_seconds
            : 0;
    char in_s[32], eps_s[32], ad_s[32], qps_s[32], rate_s[32];
    std::snprintf(in_s, sizeof in_s, "%.3f", ingest_seconds);
    std::snprintf(eps_s, sizeof eps_s, "%.0f", eps);
    std::snprintf(ad_s, sizeof ad_s, "%.3f", admit_seconds);
    std::snprintf(qps_s, sizeof qps_s, "%.0f", qps);
    std::snprintf(rate_s, sizeof rate_s, "%.1f%%", 100.0 * summary_rate);
    table.AddRow({std::to_string(shards), in_s, eps_s, ad_s, qps_s,
                  FormatCount(cover), FormatCount(router.cross_shard_edges),
                  FormatCount(router.cross_queries), rate_s});
    std::fflush(stdout);

    // Identity keys are all deterministic (routing, compaction cadence
    // and summary resolution depend only on the seeded workload); the
    // wall clock stays a metric.
    json.BeginRow();
    json.Num("shards", static_cast<uint64_t>(shards));
    json.Num("epochs", stats.epochs_published);
    json.Num("compactions", stats.compactions);
    json.Num("cross_edges", router.cross_shard_edges);
    json.Num("cross_queries", router.cross_queries);
    json.Num("summary_resolved", router.summary_resolved);
    json.Num("scatter_gather", router.scatter_gather_probes);
    json.Num("seconds", ingest_seconds + admit_seconds);
    json.Num("cover", cover);
    json.Num("would_close",
             static_cast<uint64_t>(
                 std::count(verdicts.begin(), verdicts.end(), 1)));
  }
  table.Print();
  std::printf("oracle cover %llu, digest %016llx\n",
              static_cast<unsigned long long>(oracle_cover),
              static_cast<unsigned long long>(oracle_digest));

  if (!determinism_ok) return 1;
  if (!summary_ok) return 1;
  if (!json.Write(JsonSink::PathFromArgs(argc, argv))) return 1;
  std::printf(
      "\nReading: every row reproduces the unsharded oracle's transversal\n"
      "and verdicts bit-for-bit; \"summary rate\" is the share of\n"
      "cross-shard admissions the per-shard boundary summaries answered\n"
      "without a scatter/gather union sweep.\n");
  return 0;
}
