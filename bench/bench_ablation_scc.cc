// Ablation (beyond the paper): the SCC prefilter. Vertices in SCCs smaller
// than 3 lie on no qualifying cycle and can be discharged without search.
// Measures how much of each proxy the filter removes and the end-to-end
// effect on TDB++ runtime. Cover must be identical with and without.
#include <cstdio>
#include <cstdlib>

#include "core/solver.h"
#include "datasets.h"
#include "table_printer.h"

int main() {
  using namespace tdb;
  using namespace tdb::bench;

  const double scale = BenchScale();
  constexpr uint32_t kHop = 5;

  std::printf("== Ablation: SCC prefilter (k = %u, scale %.3g) ==\n", kHop,
              scale);
  TablePrinter table({"Name", "off s", "on s", "scc-filtered", "bfs-filtered",
                      "cover equal"});
  for (const char* name : {"GNU", "EU", "WIT", "WGO", "WND", "WBS"}) {
    const DatasetSpec* spec = FindDataset(name);
    CsrGraph g = BuildProxy(*spec, scale);
    CoverOptions off;
    off.k = kHop;
    CoverOptions on = off;
    on.scc_prefilter = true;
    CoverResult a = SolveCycleCover(g, CoverAlgorithm::kTdbPlusPlus, off);
    CoverResult b = SolveCycleCover(g, CoverAlgorithm::kTdbPlusPlus, on);
    if (!a.status.ok() || !b.status.ok()) {
      std::fprintf(stderr, "solver failure on %s\n", name);
      return 1;
    }
    if (a.cover != b.cover) {
      std::fprintf(stderr, "SCC prefilter changed the cover on %s\n", name);
      return 1;
    }
    table.AddRow({name, FormatSeconds(a.stats.elapsed_seconds, false),
                  FormatSeconds(b.stats.elapsed_seconds, false),
                  FormatCount(b.stats.scc_filtered),
                  FormatCount(b.stats.bfs_filtered), "yes"});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nReading: on sparse graphs with large acyclic fringes (GNU, EU)\n"
      "the SCC pass discharges most vertices before any search; on dense\n"
      "web graphs the BFS filter already catches them.\n");
  return 0;
}
