// Serving-layer throughput: batched ingest + concurrent admission QPS of
// the CycleBreakService, swept over admission reader thread counts.
//
// Each row replays the identical deterministic workload — a power-law
// base snapshot plus a seeded random edge stream ingested in batches with
// synchronous compactions — while N reader threads each fire a fixed
// number of admission queries. The final transversal size ("cover") must
// be identical across rows (readers never mutate; ingest is
// deterministic); any drift is a correctness bug and the bench exits
// non-zero, mirroring bench_giant_scc's determinism hard-fail.
//
// Knobs: TDB_BENCH_SERVICE_N (vertices), TDB_BENCH_SERVICE_BASE_M (base
// edges), TDB_BENCH_SERVICE_STREAM_M (stream edges),
// TDB_BENCH_SERVICE_BATCH, TDB_BENCH_SERVICE_QUERIES (per reader).
// --json PATH emits rows for tools/check_bench_regression.py.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_runner.h"
#include "graph/generators.h"
#include "service/cycle_break_service.h"
#include "table_printer.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace tdb;
using namespace tdb::bench;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? static_cast<uint64_t>(std::atoll(env)) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const VertexId n =
      static_cast<VertexId>(EnvOr("TDB_BENCH_SERVICE_N", 2000));
  const EdgeId base_m = EnvOr("TDB_BENCH_SERVICE_BASE_M", 6000);
  const EdgeId stream_m = EnvOr("TDB_BENCH_SERVICE_STREAM_M", 8000);
  const size_t batch = EnvOr("TDB_BENCH_SERVICE_BATCH", 256);
  const uint64_t queries = EnvOr("TDB_BENCH_SERVICE_QUERIES", 40000);
  constexpr uint32_t kHop = 4;

  // Deterministic workload shared by every row.
  PowerLawParams params;
  params.n = n;
  params.m = base_m;
  params.theta = 0.6;
  params.reciprocity = 0.2;
  params.seed = 7;
  const CsrGraph base = GeneratePowerLaw(params);
  std::vector<Edge> stream;
  {
    Rng rng(11);
    stream.reserve(stream_m);
    for (EdgeId i = 0; i < stream_m; ++i) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (u == v) v = (v + 1) % n;
      stream.push_back(Edge{u, v});
    }
  }

  std::printf("== Service throughput: ingest %llu edges + admission sweep "
              "(n=%u, k=%u) ==\n",
              static_cast<unsigned long long>(stream_m), n, kHop);
  TablePrinter table({"admit threads", "seconds", "ingest eps",
                      "admit qps", "cover", "epochs", "compactions"});
  JsonSink json("service_throughput");
  json.BeginRow();
  json.Str("row", "params");
  json.Num("n", static_cast<uint64_t>(n));
  json.Num("base_m", base_m);
  json.Num("stream_m", stream_m);
  json.Num("batch", static_cast<uint64_t>(batch));
  json.Num("queries", queries);
  json.Num("k", static_cast<uint64_t>(kHop));

  // Content digest of the final transversal (sorted S pairs + base cover
  // + delta size): size-preserving drift across rows must fail too.
  const auto transversal_digest = [](const ServiceSnapshot& snap) {
    uint64_t digest = 1469598103934665603ull;  // FNV-1a
    const auto mix = [&digest](uint64_t x) {
      digest = (digest ^ x) * 1099511628211ull;
    };
    std::vector<std::pair<VertexId, VertexId>> s_edges;
    s_edges.reserve(snap.cover.covered.size());
    for (EdgeId e : snap.cover.covered) {
      s_edges.push_back({snap.graph.EdgeSrc(e), snap.graph.EdgeDst(e)});
    }
    std::sort(s_edges.begin(), s_edges.end());
    for (const auto& [u, v] : s_edges) {
      mix(u);
      mix(v);
    }
    for (VertexId v : snap.cover.base->vertices) mix(v);
    mix(snap.graph.delta_edges());
    return digest;
  };
  bool have_reference = false;
  uint64_t reference_digest = 0;
  bool determinism_ok = true;
  for (const int threads : {1, 2, 4, 8}) {
    ServiceOptions options;
    options.cover.k = kHop;
    options.compact_delta_threshold = 2048;
    options.synchronous_compaction = true;  // deterministic epoch count
    CsrGraph base_copy = base;  // the service takes ownership per row
    Timer timer;
    CycleBreakService service(std::move(base_copy), options);
    std::vector<std::thread> readers;
    readers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      readers.emplace_back([&service, t, queries, n] {
        Rng rng(500 + static_cast<uint64_t>(t));
        for (uint64_t q = 0; q < queries; ++q) {
          const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
          const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
          (void)service.CheckAdmission(u, v);
        }
      });
    }
    for (size_t at = 0; at < stream.size(); at += batch) {
      const size_t len = std::min(batch, stream.size() - at);
      service.SubmitEdges(std::span<const Edge>(stream.data() + at, len));
    }
    for (auto& r : readers) r.join();
    const double seconds = timer.ElapsedSeconds();

    const ServiceStatsSnapshot stats = service.Stats();
    const auto snap = service.PinSnapshot();
    const uint64_t cover =
        snap->cover.covered.size() + snap->cover.base->vertices.size();
    const uint64_t digest = transversal_digest(*snap);
    if (!have_reference) {
      have_reference = true;
      reference_digest = digest;
    } else if (digest != reference_digest) {
      determinism_ok = false;
    }
    const double eps =
        seconds > 0 ? static_cast<double>(stream.size()) / seconds : 0;
    const double qps =
        seconds > 0
            ? static_cast<double>(queries) * threads / seconds
            : 0;

    char sec_s[32], eps_s[32], qps_s[32];
    std::snprintf(sec_s, sizeof sec_s, "%.3f", seconds);
    std::snprintf(eps_s, sizeof eps_s, "%.0f", eps);
    std::snprintf(qps_s, sizeof qps_s, "%.0f", qps);
    table.AddRow({std::to_string(threads), sec_s, eps_s, qps_s,
                  FormatCount(cover),
                  std::to_string(stats.epochs_published),
                  std::to_string(stats.compactions)});
    std::fflush(stdout);

    // Identity keys (threads/epochs/compactions) are deterministic;
    // throughput rates are machine-dependent and stay out of the JSON so
    // the regression checker matches rows across runners.
    json.BeginRow();
    json.Num("threads", static_cast<uint64_t>(threads));
    json.Num("epochs", stats.epochs_published);
    json.Num("compactions", stats.compactions);
    json.Num("seconds", seconds);
    json.Num("cover", cover);
  }
  table.Print();

  if (!determinism_ok) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: final transversal content "
                 "drifted across reader thread counts\n");
    return 1;
  }
  if (!json.Write(JsonSink::PathFromArgs(argc, argv))) return 1;
  std::printf(
      "\nReading: admission readers scale with threads while the single\n"
      "writer ingests at a fixed batch cadence; \"cover\" identical on\n"
      "every row is the concurrency-safety certificate.\n");
  return 0;
}
