// Serving-layer throughput: batched ingest + concurrent admission QPS of
// the CycleBreakService, swept over admission reader thread counts.
//
// Each row replays the identical deterministic workload — a power-law
// base snapshot plus a seeded random edge stream ingested in batches with
// synchronous compactions — while N reader threads each fire a fixed
// number of admission queries. The final transversal size ("cover") must
// be identical across rows (readers never mutate; ingest is
// deterministic); any drift is a correctness bug and the bench exits
// non-zero, mirroring bench_giant_scc's determinism hard-fail.
//
// A second sweep measures steady-state admission QPS at a fixed 4 reader
// threads over the SAME post-ingest state, in three modes: "plain"
// (per-query, no index), "indexed" (per-query against landmark distance
// sketches) and "indexed_batched" (CheckAdmissionBatch with shared
// multi-source probes). All three evaluate the identical seeded query
// list and their verdict bitvectors must be byte-identical — any
// divergence is a correctness bug and the bench exits non-zero.
// TDB_BENCH_MIN_ADMIT_SPEEDUP (optional) turns the indexed_batched
// speedup over plain into a hard floor, the perf claim CI enforces.
//
// Knobs: TDB_BENCH_SERVICE_N (vertices), TDB_BENCH_SERVICE_BASE_M (base
// edges), TDB_BENCH_SERVICE_STREAM_M (stream edges),
// TDB_BENCH_SERVICE_BATCH, TDB_BENCH_SERVICE_QUERIES (per reader),
// TDB_BENCH_SERVICE_LANDMARKS (index size), TDB_BENCH_SERVICE_ADMIT_Q
// (steady-state query count), TDB_BENCH_SERVICE_ADMIT_BATCH.
// --json PATH emits rows for tools/check_bench_regression.py.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_runner.h"
#include "graph/generators.h"
#include "service/cycle_break_service.h"
#include "service/graph_service.h"
#include "table_printer.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace tdb;
using namespace tdb::bench;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? static_cast<uint64_t>(std::atoll(env)) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const VertexId n =
      static_cast<VertexId>(EnvOr("TDB_BENCH_SERVICE_N", 2000));
  const EdgeId base_m = EnvOr("TDB_BENCH_SERVICE_BASE_M", 6000);
  const EdgeId stream_m = EnvOr("TDB_BENCH_SERVICE_STREAM_M", 8000);
  const size_t batch = EnvOr("TDB_BENCH_SERVICE_BATCH", 256);
  const uint64_t queries = EnvOr("TDB_BENCH_SERVICE_QUERIES", 40000);
  constexpr uint32_t kHop = 4;

  // Deterministic workload shared by every row.
  PowerLawParams params;
  params.n = n;
  params.m = base_m;
  params.theta = 0.6;
  params.reciprocity = 0.2;
  params.seed = 7;
  const CsrGraph base = GeneratePowerLaw(params);
  std::vector<Edge> stream;
  {
    Rng rng(11);
    stream.reserve(stream_m);
    for (EdgeId i = 0; i < stream_m; ++i) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (u == v) v = (v + 1) % n;
      stream.push_back(Edge{u, v});
    }
  }

  std::printf("== Service throughput: ingest %llu edges + admission sweep "
              "(n=%u, k=%u) ==\n",
              static_cast<unsigned long long>(stream_m), n, kHop);
  TablePrinter table({"admit threads", "seconds", "ingest eps",
                      "admit qps", "cover", "epochs", "compactions"});
  JsonSink json("service_throughput");
  json.BeginRow();
  json.Str("row", "params");
  json.Num("n", static_cast<uint64_t>(n));
  json.Num("base_m", base_m);
  json.Num("stream_m", stream_m);
  json.Num("batch", static_cast<uint64_t>(batch));
  json.Num("queries", queries);
  json.Num("k", static_cast<uint64_t>(kHop));

  // Content digest of the final transversal (sorted S pairs + base cover
  // + delta size): size-preserving drift across rows must fail too. Reads
  // the backend-neutral TransversalImage so the same digest works against
  // any GraphService implementation.
  const auto transversal_digest = [](const TransversalImage& image) {
    uint64_t digest = 1469598103934665603ull;  // FNV-1a
    const auto mix = [&digest](uint64_t x) {
      digest = (digest ^ x) * 1099511628211ull;
    };
    std::vector<std::pair<VertexId, VertexId>> s_edges;
    s_edges.reserve(image.covered.size());
    for (const auto& e : image.covered) s_edges.push_back({e.src, e.dst});
    std::sort(s_edges.begin(), s_edges.end());
    for (const auto& [u, v] : s_edges) {
      mix(u);
      mix(v);
    }
    for (VertexId v : image.cover_vertices) mix(v);
    mix(image.delta.size());
    return digest;
  };
  bool have_reference = false;
  uint64_t reference_digest = 0;
  bool determinism_ok = true;
  // Per-row latency histograms live in a bench-local registry; the JSON
  // rows read their percentiles back from the registry instruments, the
  // same data path tdb_serve's /metrics exports.
  MetricRegistry bench_registry;
  for (const int threads : {1, 2, 4, 8}) {
    ServiceOptions options;
    options.cover.k = kHop;
    options.compact_delta_threshold = 2048;
    options.synchronous_compaction = true;  // deterministic epoch count
    CsrGraph base_copy = base;  // the service takes ownership per row
    Timer timer;
    CycleBreakService backend(std::move(base_copy), options);
    // Readers and the ingest loop drive the backend-agnostic interface —
    // the same surface tdb_serve serves either backend through.
    GraphService& service = backend;
    LatencyHistogram* admit_lat = bench_registry.AddHistogram(
        "bench_admit_t" + std::to_string(threads) + "_seconds",
        "Per-query admission latency during the ingest sweep");
    std::vector<std::thread> readers;
    readers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      readers.emplace_back([&service, admit_lat, t, queries, n] {
        Rng rng(500 + static_cast<uint64_t>(t));
        for (uint64_t q = 0; q < queries; ++q) {
          const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
          const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
          Timer query_timer;
          (void)service.CheckAdmission(u, v);
          admit_lat->Record(query_timer.ElapsedSeconds());
        }
      });
    }
    for (size_t at = 0; at < stream.size(); at += batch) {
      const size_t len = std::min(batch, stream.size() - at);
      service.SubmitEdges(std::span<const Edge>(stream.data() + at, len));
    }
    for (auto& r : readers) r.join();
    const double seconds = timer.ElapsedSeconds();

    const ServiceStatsSnapshot stats = service.Stats();
    const TransversalImage image = service.Image();
    const uint64_t cover =
        image.covered.size() + image.cover_vertices.size();
    const uint64_t digest = transversal_digest(image);
    if (!have_reference) {
      have_reference = true;
      reference_digest = digest;
    } else if (digest != reference_digest) {
      determinism_ok = false;
    }
    const double eps =
        seconds > 0 ? static_cast<double>(stream.size()) / seconds : 0;
    const double qps =
        seconds > 0
            ? static_cast<double>(queries) * threads / seconds
            : 0;

    char sec_s[32], eps_s[32], qps_s[32];
    std::snprintf(sec_s, sizeof sec_s, "%.3f", seconds);
    std::snprintf(eps_s, sizeof eps_s, "%.0f", eps);
    std::snprintf(qps_s, sizeof qps_s, "%.0f", qps);
    table.AddRow({std::to_string(threads), sec_s, eps_s, qps_s,
                  FormatCount(cover),
                  std::to_string(stats.epochs_published),
                  std::to_string(stats.compactions)});
    std::fflush(stdout);

    // Identity keys (threads/epochs/compactions) are deterministic;
    // throughput rates are machine-dependent and stay out of the JSON so
    // the regression checker matches rows across runners.
    json.BeginRow();
    json.Num("threads", static_cast<uint64_t>(threads));
    json.Num("epochs", stats.epochs_published);
    json.Num("compactions", stats.compactions);
    json.Num("seconds", seconds);
    json.Num("cover", cover);
    json.Num("admit_p50_us", admit_lat->PercentileSeconds(0.50) * 1e6);
    json.Num("admit_p95_us", admit_lat->PercentileSeconds(0.95) * 1e6);
    json.Num("admit_p99_us", admit_lat->PercentileSeconds(0.99) * 1e6);
  }
  table.Print();

  if (!determinism_ok) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: final transversal content "
                 "drifted across reader thread counts\n");
    return 1;
  }

  // ---- Steady-state admission mode sweep (fixed 4 reader threads) ----
  const int landmarks =
      static_cast<int>(EnvOr("TDB_BENCH_SERVICE_LANDMARKS", 512));
  const uint64_t admit_q = EnvOr("TDB_BENCH_SERVICE_ADMIT_Q", 80000);
  const size_t admit_batch = EnvOr("TDB_BENCH_SERVICE_ADMIT_BATCH", 256);
  const double min_speedup = [] {
    const char* env = std::getenv("TDB_BENCH_MIN_ADMIT_SPEEDUP");
    return env != nullptr ? std::atof(env) : 0.0;
  }();
  constexpr int kAdmitThreads = 4;
  json.BeginRow();
  json.Str("row", "admit_params");
  json.Num("landmarks", static_cast<uint64_t>(landmarks));
  json.Num("admit_q", admit_q);
  json.Num("admit_batch", static_cast<uint64_t>(admit_batch));
  json.Num("admit_threads", static_cast<uint64_t>(kAdmitThreads));

  // Two services over the identical ingest: the index must not perturb
  // ingest at all, so their final transversals must digest-match.
  const auto make_service = [&](int index_landmarks) {
    ServiceOptions options;
    options.cover.k = kHop;
    options.compact_delta_threshold = 2048;
    options.synchronous_compaction = true;
    options.admission_index_landmarks = index_landmarks;
    CsrGraph base_copy = base;
    auto service =
        std::make_unique<CycleBreakService>(std::move(base_copy), options);
    for (size_t at = 0; at < stream.size(); at += batch) {
      const size_t len = std::min(batch, stream.size() - at);
      service->SubmitEdges(std::span<const Edge>(stream.data() + at, len));
    }
    return service;
  };
  const auto plain_service = make_service(0);
  const auto indexed_service = make_service(landmarks);
  if (transversal_digest(plain_service->Image()) !=
      transversal_digest(indexed_service->Image())) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: admission index perturbed "
                 "ingest state\n");
    return 1;
  }
  const uint64_t steady_cover = [&] {
    const TransversalImage image = plain_service->Image();
    return image.covered.size() + image.cover_vertices.size();
  }();

  std::vector<Edge> admit_queries;
  admit_queries.reserve(admit_q);
  {
    Rng rng(900);
    for (uint64_t i = 0; i < admit_q; ++i) {
      admit_queries.push_back(
          Edge{static_cast<VertexId>(rng.NextBounded(n)),
               static_cast<VertexId>(rng.NextBounded(n))});
    }
  }

  // Runs one mode: kAdmitThreads threads over disjoint slices of the
  // query list, verdict bits recorded for cross-mode comparison and
  // per-query latency recorded into the mode's registry histogram
  // (batched mode samples batch latency / batch length per query, so
  // percentiles stay comparable across modes).
  const auto run_mode = [&](GraphService& service, bool batched,
                            std::vector<uint8_t>* verdicts,
                            LatencyHistogram* lat) {
    verdicts->assign(admit_queries.size(), 0);
    Timer timer;
    std::vector<std::thread> workers;
    workers.reserve(kAdmitThreads);
    const size_t per =
        (admit_queries.size() + kAdmitThreads - 1) / kAdmitThreads;
    for (int t = 0; t < kAdmitThreads; ++t) {
      workers.emplace_back([&, t] {
        const size_t begin = std::min(per * t, admit_queries.size());
        const size_t end = std::min(begin + per, admit_queries.size());
        if (batched) {
          for (size_t at = begin; at < end; at += admit_batch) {
            const size_t len = std::min(admit_batch, end - at);
            Timer batch_timer;
            const std::vector<AdmissionVerdict> out =
                service.CheckAdmissionBatch(
                    std::span<const Edge>(admit_queries.data() + at, len));
            const double per_query = batch_timer.ElapsedSeconds() /
                                     static_cast<double>(len);
            for (size_t j = 0; j < len; ++j) {
              (*verdicts)[at + j] = out[j].would_close ? 1 : 0;
              lat->Record(per_query);
            }
          }
        } else {
          for (size_t i = begin; i < end; ++i) {
            Timer query_timer;
            const AdmissionVerdict v = service.CheckAdmission(
                admit_queries[i].src, admit_queries[i].dst);
            lat->Record(query_timer.ElapsedSeconds());
            (*verdicts)[i] = v.would_close ? 1 : 0;
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    return timer.ElapsedSeconds();
  };

  std::printf("\n== Steady-state admission modes (%llu queries, %d "
              "threads, %d landmarks, batch %zu) ==\n",
              static_cast<unsigned long long>(admit_q), kAdmitThreads,
              landmarks, admit_batch);
  TablePrinter admit_table(
      {"mode", "seconds", "admit qps", "speedup", "would close"});
  struct ModeResult {
    const char* mode;
    double seconds = 0;
    std::vector<uint8_t> verdicts;
    LatencyHistogram* lat = nullptr;
  };
  ModeResult modes[3] = {
      {"plain"}, {"indexed"}, {"indexed_batched"}};
  for (ModeResult& m : modes) {
    m.lat = bench_registry.AddHistogram(
        std::string("bench_admit_") + m.mode + "_seconds",
        "Per-query admission latency in the steady-state sweep");
  }
  modes[0].seconds =
      run_mode(*plain_service, false, &modes[0].verdicts, modes[0].lat);
  modes[1].seconds =
      run_mode(*indexed_service, false, &modes[1].verdicts, modes[1].lat);
  modes[2].seconds =
      run_mode(*indexed_service, true, &modes[2].verdicts, modes[2].lat);

  for (const ModeResult& m : modes) {
    if (m.verdicts != modes[0].verdicts) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: %s verdicts differ from the "
                   "plain per-query path\n",
                   m.mode);
      return 1;
    }
  }
  const uint64_t would_close = static_cast<uint64_t>(
      std::count(modes[0].verdicts.begin(), modes[0].verdicts.end(), 1));
  double batched_speedup = 0;
  for (const ModeResult& m : modes) {
    const double speedup =
        m.seconds > 0 ? modes[0].seconds / m.seconds : 0;
    if (std::string(m.mode) == "indexed_batched") batched_speedup = speedup;
    const double qps =
        m.seconds > 0
            ? static_cast<double>(admit_queries.size()) / m.seconds
            : 0;
    char sec_s[32], qps_s[32], spd_s[32];
    std::snprintf(sec_s, sizeof sec_s, "%.3f", m.seconds);
    std::snprintf(qps_s, sizeof qps_s, "%.0f", qps);
    std::snprintf(spd_s, sizeof spd_s, "%.2fx", speedup);
    admit_table.AddRow({m.mode, sec_s, qps_s, spd_s,
                        std::to_string(would_close)});

    json.BeginRow();
    json.Str("mode", m.mode);
    json.Num("admit_threads", static_cast<uint64_t>(kAdmitThreads));
    json.Num("seconds", m.seconds);
    json.Num("speedup", speedup);
    json.Num("would_close", would_close);
    json.Num("cover", steady_cover);
    json.Num("admit_p50_us", m.lat->PercentileSeconds(0.50) * 1e6);
    json.Num("admit_p95_us", m.lat->PercentileSeconds(0.95) * 1e6);
    json.Num("admit_p99_us", m.lat->PercentileSeconds(0.99) * 1e6);
  }
  admit_table.Print();
  {
    const ServiceStatsSnapshot s = indexed_service->Stats();
    const uint64_t decided = s.index_hits + s.index_fallbacks;
    std::printf("index: %llu hits / %llu fallbacks (%.1f%% hit rate), "
                "%llu builds in %.3fs\n",
                static_cast<unsigned long long>(s.index_hits),
                static_cast<unsigned long long>(s.index_fallbacks),
                decided > 0 ? 100.0 * static_cast<double>(s.index_hits) /
                                  static_cast<double>(decided)
                            : 0.0,
                static_cast<unsigned long long>(s.index_builds),
                s.index_build_seconds);
  }
  if (min_speedup > 0 && batched_speedup < min_speedup) {
    std::fprintf(stderr,
                 "SPEEDUP FLOOR VIOLATION: indexed_batched %.2fx < "
                 "TDB_BENCH_MIN_ADMIT_SPEEDUP %.2fx\n",
                 batched_speedup, min_speedup);
    return 1;
  }

  if (!json.Write(JsonSink::PathFromArgs(argc, argv))) return 1;
  std::printf(
      "\nReading: admission readers scale with threads while the single\n"
      "writer ingests at a fixed batch cadence; \"cover\" identical on\n"
      "every row is the concurrency-safety certificate.\n");
  return 0;
}
