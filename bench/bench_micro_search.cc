// Micro-benchmarks of the search substrate (google-benchmark): the
// per-validation cost that drives every solver. Covers the plain DFS vs
// block-based validation gap (the paper's core claim at the search level),
// the BFS filter, and bounded path existence.
#include <benchmark/benchmark.h>

#include "datasets.h"
#include "graph/fixtures.h"
#include "graph/generators.h"
#include "graph/scc.h"
#include "search/bfs_filter.h"
#include "search/cycle_finder.h"
#include "search/path_search.h"

namespace {

using namespace tdb;

/// Validation sweep over all vertices of the WKV proxy (no kept mask:
/// worst-case full-graph searches).
const CsrGraph& WkvProxy() {
  static const CsrGraph g =
      bench::BuildProxy(*bench::FindDataset("WKV"), 0.5);
  return g;
}

void BM_PlainDfsValidation(benchmark::State& state) {
  const CsrGraph& g = WkvProxy();
  CycleFinder finder(g);
  const CycleConstraint c{.max_hops = static_cast<uint32_t>(state.range(0)),
                          .min_len = 3};
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        finder.FindCycleThrough(v, c, nullptr, nullptr));
    v = (v + 1) % g.num_vertices();
  }
  state.counters["expansions/iter"] = benchmark::Counter(
      static_cast<double>(finder.stats().expansions),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PlainDfsValidation)->Arg(3)->Arg(4)->Arg(5);

void BM_BlockValidation(benchmark::State& state) {
  const CsrGraph& g = WkvProxy();
  BlockSearch search(g);
  const CycleConstraint c{.max_hops = static_cast<uint32_t>(state.range(0)),
                          .min_len = 3};
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        search.FindCycleThrough(v, c, nullptr, nullptr));
    v = (v + 1) % g.num_vertices();
  }
  state.counters["expansions/iter"] = benchmark::Counter(
      static_cast<double>(search.stats().expansions),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BlockValidation)->Arg(3)->Arg(4)->Arg(5)->Arg(6)->Arg(7);

void BM_BlockValidationWorstCaseFan(benchmark::State& state) {
  // Figure 5 shape: the structure the block technique is built for.
  static const CsrGraph g = MakeFigure5Blocks(2000);
  BlockSearch search(g);
  const CycleConstraint c{.max_hops = 6, .min_len = 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.FindCycleThrough(0, c, nullptr, nullptr));
  }
}
BENCHMARK(BM_BlockValidationWorstCaseFan);

void BM_PlainDfsWorstCaseFan(benchmark::State& state) {
  static const CsrGraph g = MakeFigure5Blocks(2000);
  CycleFinder finder(g);
  const CycleConstraint c{.max_hops = 6, .min_len = 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        finder.FindCycleThrough(0, c, nullptr, nullptr));
  }
}
BENCHMARK(BM_PlainDfsWorstCaseFan);

// Layered funnel: a failed plain validation enumerates width^(k-1) simple
// paths while the block engine stays O(k*m) — the asymptotic gap behind
// the paper's Theorem 6 (arg = k).
void BM_PlainDfsFunnel(benchmark::State& state) {
  static const CsrGraph g = MakeLayeredFunnel(8, 12);
  CycleFinder finder(g);
  const CycleConstraint c{.max_hops = static_cast<uint32_t>(state.range(0)),
                          .min_len = 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        finder.FindCycleThrough(0, c, nullptr, nullptr));
  }
}
BENCHMARK(BM_PlainDfsFunnel)->Arg(4)->Arg(5)->Arg(6)->Arg(7);

void BM_BlockValidationFunnel(benchmark::State& state) {
  static const CsrGraph g = MakeLayeredFunnel(8, 12);
  BlockSearch search(g);
  const CycleConstraint c{.max_hops = static_cast<uint32_t>(state.range(0)),
                          .min_len = 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.FindCycleThrough(0, c, nullptr, nullptr));
  }
}
BENCHMARK(BM_BlockValidationFunnel)->Arg(4)->Arg(5)->Arg(6)->Arg(7);

void BM_BfsFilter(benchmark::State& state) {
  const CsrGraph& g = WkvProxy();
  BfsFilter filter(g);
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.ShortestClosedWalk(v, k, nullptr));
    v = (v + 1) % g.num_vertices();
  }
}
BENCHMARK(BM_BfsFilter)->Arg(3)->Arg(5)->Arg(7);

void BM_PathExistence(benchmark::State& state) {
  const CsrGraph& g = WkvProxy();
  BlockSearch search(g);
  VertexId s = 0;
  for (auto _ : state) {
    const VertexId t = (s + g.num_vertices() / 2) % g.num_vertices();
    benchmark::DoNotOptimize(
        search.FindPath(s, t, 2, 4, nullptr, nullptr, nullptr));
    s = (s + 1) % g.num_vertices();
  }
}
BENCHMARK(BM_PathExistence);

void BM_SccDecomposition(benchmark::State& state) {
  const CsrGraph& g = WkvProxy();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeScc(g).num_components);
  }
}
BENCHMARK(BM_SccDecomposition);

}  // namespace

BENCHMARK_MAIN();
