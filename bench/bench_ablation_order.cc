// Ablation (beyond the paper): sensitivity of the top-down solver to the
// candidate processing order. The paper does not specify an order; this
// quantifies how much the choice moves cover size and runtime, justifying
// the library's id-order default.
#include <cstdio>

#include "core/solver.h"
#include "datasets.h"
#include "table_printer.h"

int main() {
  using namespace tdb;
  using namespace tdb::bench;

  const double scale = BenchScale();
  constexpr uint32_t kHop = 5;

  std::printf("== Ablation: top-down vertex order (k = %u, scale %.3g) ==\n",
              kHop, scale);
  struct Named {
    const char* name;
    VertexOrder order;
  };
  const Named kOrders[] = {
      {"id", VertexOrder::kById},
      {"deg-asc", VertexOrder::kByDegreeAsc},
      {"deg-desc", VertexOrder::kByDegreeDesc},
      {"random", VertexOrder::kRandom},
  };
  for (const char* name : {"WKV", "ASC", "WGO", "SAD"}) {
    const DatasetSpec* spec = FindDataset(name);
    CsrGraph g = BuildProxy(*spec, scale);
    std::printf("\n-- %s --\n", spec->name);
    TablePrinter table({"order", "cover size", "time s"});
    for (const Named& o : kOrders) {
      CoverOptions opts;
      opts.k = kHop;
      opts.order = o.order;
      CoverResult r = SolveCycleCover(g, CoverAlgorithm::kTdbPlusPlus, opts);
      table.AddRow({o.name,
                    FormatCount(r.cover.size(), !r.status.ok()),
                    FormatSeconds(r.stats.elapsed_seconds, false)});
    }
    table.Print();
    std::fflush(stdout);
  }
  std::printf(
      "\nReading: degree-ascending is the clear winner on both size and\n"
      "time — peripheral vertices discharge early, so the kept vertices\n"
      "are hubs that each cover many cycles. This is the library default.\n"
      "Degree-descending inverts that and keeps low-value vertices.\n");
  return 0;
}
