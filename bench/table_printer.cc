#include "table_printer.h"

#include <algorithm>

namespace tdb::bench {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::fprintf(out, "%s%-*s", c == 0 ? "| " : " | ",
                   static_cast<int>(widths[c]), cell.c_str());
    }
    std::fprintf(out, " |\n");
  };
  print_row(headers_);
  for (size_t c = 0; c < widths.size(); ++c) {
    std::fprintf(out, "%s%s", c == 0 ? "|-" : "-|-",
                 std::string(widths[c], '-').c_str());
  }
  std::fprintf(out, "-|\n");
  for (const auto& row : rows_) print_row(row);
}

std::string FormatSeconds(double seconds, bool timed_out) {
  if (timed_out) return "INF";
  char buf[64];
  if (seconds < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.4f", seconds);
  } else if (seconds < 10) {
    std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", seconds);
  }
  return buf;
}

std::string FormatCount(uint64_t value, bool failed) {
  if (failed) return "-";
  std::string digits = std::to_string(value);
  std::string out;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      out.push_back(',');
      since_sep = 0;
    }
    out.push_back(*it);
    ++since_sep;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string FormatMagnitude(double value) {
  char buf[64];
  if (value >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fB", value / 1e9);
  } else if (value >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", value / 1e6);
  } else if (value >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fK", value / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  }
  return buf;
}

}  // namespace tdb::bench
