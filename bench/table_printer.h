// Aligned, paper-style table output for the experiment binaries.
#ifndef TDB_BENCH_TABLE_PRINTER_H_
#define TDB_BENCH_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace tdb::bench {

/// Collects rows and prints them with per-column alignment.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Prints header, separator, and all rows to `out`.
  void Print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Seconds with paper-style formatting; "INF" when `timed_out`.
std::string FormatSeconds(double seconds, bool timed_out);

/// Cover sizes with thousands separators ("3,731,522"); "-" for failures.
std::string FormatCount(uint64_t value, bool failed = false);

/// Human-readable |V|/|E| ("7K", "1.47B") matching Table II's style.
std::string FormatMagnitude(double value);

}  // namespace tdb::bench

#endif  // TDB_BENCH_TABLE_PRINTER_H_
