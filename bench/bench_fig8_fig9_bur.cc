// Reproduces Figures 8 and 9: the minimal-pruning ablation. BUR vs BUR+ on
// the WKV and WGO proxies, k = 3..7 — runtime (Fig. 8) should be similar,
// cover size (Fig. 9) smaller for BUR+.
#include <cstdio>

#include "bench_runner.h"
#include "datasets.h"
#include "table_printer.h"

int main() {
  using namespace tdb;
  using namespace tdb::bench;

  const double scale = BenchScale();
  const double timeout = BenchTimeout(15.0);

  std::printf(
      "== Figures 8 + 9: BUR vs BUR+ (scale %.3g, budget %.0fs) ==\n",
      scale, timeout);
  for (const char* name : {"WKV", "WGO"}) {
    const DatasetSpec* spec = FindDataset(name);
    CsrGraph g = BuildProxy(*spec, scale);
    std::printf("\n-- %s (%s) --\n", spec->name, spec->full_name);
    TablePrinter table(
        {"k", "BUR s", "BUR+ s", "BUR size", "BUR+ size", "pruned"});
    for (uint32_t k = 3; k <= 7; ++k) {
      Cell bur = RunCovered(g, CoverAlgorithm::kBur, k, timeout);
      Cell burp = RunCovered(g, CoverAlgorithm::kBurPlus, k, timeout);
      const bool bur_bad = bur.timed_out || bur.failed;
      const bool burp_bad = burp.timed_out || burp.failed;
      const uint64_t pruned =
          (!bur_bad && !burp_bad && bur.cover_size >= burp.cover_size)
              ? bur.cover_size - burp.cover_size
              : 0;
      table.AddRow({std::to_string(k),
                    FormatSeconds(bur.seconds, bur.timed_out),
                    FormatSeconds(burp.seconds, burp.timed_out),
                    FormatCount(bur.cover_size, bur_bad),
                    FormatCount(burp.cover_size, burp_bad),
                    FormatCount(pruned, bur_bad || burp_bad)});
      std::fflush(stdout);
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape (paper): similar runtimes (Fig. 8); BUR+ covers\n"
      "strictly smaller thanks to minimal pruning (Fig. 9).\n");
  return 0;
}
