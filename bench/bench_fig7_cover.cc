// Reproduces Figure 7: cover size of BUR+, DARC-DV and TDB++ while k
// varies from 3 to 7, one series block per small dataset.
#include <cstdio>

#include "bench_runner.h"
#include "datasets.h"
#include "table_printer.h"

int main() {
  using namespace tdb;
  using namespace tdb::bench;

  const double scale = BenchScale();
  const double timeout = BenchTimeout(5.0);

  std::printf(
      "== Figure 7: cover size vs k (scale %.3g, per-run budget %.0fs) ==\n",
      scale, timeout);
  for (const DatasetSpec& spec : SmallDatasets()) {
    CsrGraph g = BuildProxy(spec, scale);
    std::printf("\n-- %s (%s) --\n", spec.name, spec.full_name);
    TablePrinter table({"k", "BUR+", "DARC-DV", "TDB++"});
    for (uint32_t k = 3; k <= 7; ++k) {
      Cell burp = RunCovered(g, CoverAlgorithm::kBurPlus, k, timeout);
      Cell darc = RunCovered(g, CoverAlgorithm::kDarcDv, k, timeout);
      Cell tdbpp = RunCovered(g, CoverAlgorithm::kTdbPlusPlus, k, timeout);
      table.AddRow(
          {std::to_string(k),
           FormatCount(burp.cover_size, burp.timed_out || burp.failed),
           FormatCount(darc.cover_size, darc.timed_out || darc.failed),
           FormatCount(tdbpp.cover_size, tdbpp.timed_out || tdbpp.failed)});
      std::fflush(stdout);
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape (paper): cover sizes grow with k; BUR+ smallest,\n"
      "TDB++ within a few percent of BUR+, DARC-DV the largest.\n");
  return 0;
}
