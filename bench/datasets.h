// Registry of synthetic proxies for the paper's 16 evaluation datasets
// (Table II). Each proxy is generated deterministically to match the
// published statistics in shape — scaled-down vertex count, the same
// average degree, Zipf-skewed hubs, and a per-dataset reciprocity chosen to
// mirror the 2-cycle structure implied by Table IV. See DESIGN.md §4.
#ifndef TDB_BENCH_DATASETS_H_
#define TDB_BENCH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/csr_graph.h"

namespace tdb::bench {

/// One dataset proxy description.
struct DatasetSpec {
  /// Paper abbreviation (WKV, ASC, ...).
  const char* name;
  /// Full dataset name as in Table II.
  const char* full_name;

  // Published statistics (for reporting alongside proxy numbers).
  double paper_vertices;
  double paper_edges;
  double paper_davg;

  // Proxy generation parameters at scale 1.0.
  VertexId proxy_n;
  /// Zipf skew of the degree distribution.
  double theta;
  /// Probability of a reverse edge accompanying each edge (2-cycle lever;
  /// higher values reproduce the high "with 2-cycle" ratios of Table IV).
  double reciprocity;
  /// True for FLK/LJ/WKP/TW: the four graphs only TDB++ completes in the
  /// paper's Table III.
  bool large;

  /// Proxy edge target at a given scale: n * d_avg / 2 (d_avg counts both
  /// directions, as in Table II).
  EdgeId ProxyEdges(double scale) const;
  VertexId ProxyVertices(double scale) const;
};

/// All 16 proxies in Table II order.
const std::vector<DatasetSpec>& AllDatasets();

/// The 12 "small" datasets (every algorithm runs them in the paper).
std::vector<DatasetSpec> SmallDatasets();

/// Lookup by abbreviation; nullptr if unknown.
const DatasetSpec* FindDataset(const std::string& name);

/// Generates the proxy graph. `scale` multiplies the proxy vertex count
/// (edges follow to preserve d_avg); generation is deterministic per
/// (dataset, scale).
CsrGraph BuildProxy(const DatasetSpec& spec, double scale);

/// Global scale factor from the TDB_BENCH_SCALE environment variable
/// (default 1.0). Values > 1 stress-test; < 1 smoke-test.
double BenchScale();

}  // namespace tdb::bench

#endif  // TDB_BENCH_DATASETS_H_
