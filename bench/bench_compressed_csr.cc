// Storage-backend microbench: the delta/varint CompressedCsr against the
// raw CsrGraph on the bench graph shapes. Reports bytes-per-edge and the
// compression ratio (raw resident bytes / compressed resident bytes),
// plus sequential full-scan and random-probe adjacency throughput for
// both backends — the decode tax the engine pays for the smaller
// residency. Two hard determinism gates exit non-zero and fail CI:
// the FromCsr -> ToCsr round trip must reproduce the raw graph edge for
// edge, and TDB++ covers solved from the compressed backend must be
// bit-identical to the raw covers at 1 and 4 threads.
//
//   TDB_BENCH_N                        vertices per shape (default 4000)
//   TDB_BENCH_DEGREE                   average out-degree (default 8)
//   TDB_BENCH_REPEATS                  runs per cell, best kept (def. 3)
//   TDB_BENCH_MIN_COMPRESSION_RATIO    if set, fail unless EVERY shape
//                                      compresses at least this much
//                                      (CI floor; the ISSUE 9 claim is
//                                      >= 2.5x on these shapes)
//
// `--json <path>` additionally writes machine-readable rows for
// tools/check_bench_regression.py.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_runner.h"
#include "core/solver.h"
#include "graph/compressed_csr.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "table_printer.h"
#include "util/rng.h"

namespace {

using namespace tdb;
using namespace tdb::bench;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Full adjacency sweep: every out- and in-list of every vertex, in
/// vertex order. Returns a checksum so the decode cannot be elided.
template <typename GraphT>
uint64_t ScanAll(const GraphT& g) {
  uint64_t sum = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    g.ForEachOut(v, [&](VertexId t, EdgeId e) {
      sum += t + e;
      return true;
    });
    g.ForEachIn(v, [&](VertexId s, EdgeId e) {
      sum += s ^ e;
      return true;
    });
  }
  return sum;
}

/// Random vertex probes through the DecodeNeighbors seam — the
/// materialize-one-list pattern the subgraph extractors use.
template <typename GraphT>
uint64_t ProbeRandom(const GraphT& g, size_t probes, uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> scratch;
  uint64_t sum = 0;
  for (size_t i = 0; i < probes; ++i) {
    const VertexId v =
        static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    for (VertexId t : g.DecodeNeighbors(v, scratch)) sum += t;
  }
  return sum;
}

/// Best-of-repeats wall-clock of `fn`, checksum-checked against `want`.
template <typename Fn>
bool TimeBest(int repeats, uint64_t want, Fn&& fn, double* best) {
  *best = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    const double start = Now();
    const uint64_t got = fn();
    const double elapsed = Now() - start;
    if (got != want) return false;
    if (rep == 0 || elapsed < *best) *best = elapsed;
  }
  return true;
}

bool EdgesIdentical(const CsrGraph& a, const CsrGraph& b) {
  if (a.num_vertices() != b.num_vertices() ||
      a.num_edges() != b.num_edges()) {
    return false;
  }
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    if (a.EdgeSrc(e) != b.EdgeSrc(e) || a.EdgeDst(e) != b.EdgeDst(e)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const VertexId n = static_cast<VertexId>(EnvOr("TDB_BENCH_N", 4000));
  const VertexId degree =
      static_cast<VertexId>(EnvOr("TDB_BENCH_DEGREE", 8));
  const int repeats = static_cast<int>(EnvOr("TDB_BENCH_REPEATS", 3));
  const EdgeId m = static_cast<EdgeId>(n) * degree;

  std::vector<std::pair<std::string, CsrGraph>> shapes;
  shapes.emplace_back("chorded_cycle",
                      GenerateChordedCycle(n, degree, /*seed=*/3));
  shapes.emplace_back("erdos_renyi", GenerateErdosRenyi(n, m, /*seed=*/5));
  PowerLawParams p;
  p.n = n;
  p.m = m;
  p.reciprocity = 0.3;
  p.seed = 7;
  shapes.emplace_back("powerlaw", GeneratePowerLaw(p));

  std::printf(
      "== CompressedCsr vs CsrGraph: residency and decode throughput "
      "(n=%u, target m=%llu, best of %d) ==\n",
      n, static_cast<unsigned long long>(m), repeats);

  JsonSink json("compressed_csr");
  json.BeginRow();
  json.Str("row", "params");
  json.Num("n", static_cast<uint64_t>(n));
  json.Num("degree", static_cast<uint64_t>(degree));

  TablePrinter table({"shape", "edges", "raw B/e", "comp B/e", "ratio",
                      "scan raw", "scan comp", "probe raw", "probe comp"});
  bool ok = true;
  double min_ratio = 0.0;
  for (const auto& [name, g] : shapes) {
    const CompressedCsr cg = CompressedCsr::FromCsr(g);

    // Determinism gate 1: the compressed form IS the raw graph.
    if (!EdgesIdentical(g, cg.ToCsr())) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: %s FromCsr->ToCsr round trip "
                   "does not reproduce the raw graph\n",
                   name.c_str());
      ok = false;
      continue;
    }
    // Determinism gate 2: covers solved from the compressed backend are
    // bit-identical to the raw covers.
    CoverOptions opts;
    opts.k = 5;
    for (int threads : {1, 4}) {
      opts.num_threads = threads;
      const CoverResult raw_cover =
          SolveCycleCover(g, CoverAlgorithm::kTdbPlusPlus, opts);
      const CoverResult comp_cover =
          SolveCycleCover(cg, CoverAlgorithm::kTdbPlusPlus, opts);
      if (!raw_cover.status.ok() || !comp_cover.status.ok() ||
          raw_cover.cover != comp_cover.cover) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s compressed TDB++ cover "
                     "differs from raw at %d threads\n",
                     name.c_str(), threads);
        ok = false;
      }
    }

    const uint64_t raw_bytes =
        CompressedCsr::RawCsrBytes(g.num_vertices(), g.num_edges());
    const uint64_t comp_bytes = cg.MemoryFootprint().total();
    const double ratio = comp_bytes > 0 ? static_cast<double>(raw_bytes) /
                                              static_cast<double>(comp_bytes)
                                        : 0.0;
    if (min_ratio == 0.0 || ratio < min_ratio) min_ratio = ratio;

    const uint64_t scan_sum = ScanAll(g);
    const size_t probes = static_cast<size_t>(g.num_vertices()) * 4;
    const uint64_t probe_sum = ProbeRandom(g, probes, /*seed=*/11);
    double scan_raw = 0.0, scan_comp = 0.0;
    double probe_raw = 0.0, probe_comp = 0.0;
    const bool sums_ok =
        TimeBest(repeats, scan_sum, [&] { return ScanAll(g); },
                 &scan_raw) &&
        TimeBest(repeats, scan_sum, [&] { return ScanAll(cg); },
                 &scan_comp) &&
        TimeBest(repeats, probe_sum,
                 [&] { return ProbeRandom(g, probes, 11); }, &probe_raw) &&
        TimeBest(repeats, probe_sum,
                 [&] { return ProbeRandom(cg, probes, 11); }, &probe_comp);
    if (!sums_ok) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: %s compressed scans return a "
                   "different adjacency than the raw backend\n",
                   name.c_str());
      ok = false;
      continue;
    }

    // Throughput in millions of edges decoded per second; a full scan
    // touches every edge twice (out + in direction).
    const double scan_edges =
        2.0 * static_cast<double>(g.num_edges()) / 1e6;
    char raw_bpe[32], comp_bpe[32], ratio_s[32];
    char sr[32], sc[32], pr[32], pc[32];
    std::snprintf(raw_bpe, sizeof raw_bpe, "%.1f",
                  static_cast<double>(raw_bytes) /
                      static_cast<double>(g.num_edges()));
    std::snprintf(comp_bpe, sizeof comp_bpe, "%.1f",
                  static_cast<double>(comp_bytes) /
                      static_cast<double>(g.num_edges()));
    std::snprintf(ratio_s, sizeof ratio_s, "%.2fx", ratio);
    std::snprintf(sr, sizeof sr, "%.0f Me/s", scan_edges / scan_raw);
    std::snprintf(sc, sizeof sc, "%.0f Me/s", scan_edges / scan_comp);
    std::snprintf(pr, sizeof pr, "%.2f Mp/s",
                  static_cast<double>(probes) / 1e6 / probe_raw);
    std::snprintf(pc, sizeof pc, "%.2f Mp/s",
                  static_cast<double>(probes) / 1e6 / probe_comp);
    table.AddRow({name, FormatCount(g.num_edges()), raw_bpe, comp_bpe,
                  ratio_s, sr, sc, pr, pc});

    // Byte sizes are deterministic for fixed params, so they ride a
    // tagged row the checker exact-matches like "params": any encoder
    // change shows up as a baseline mismatch, not silent drift. Timings
    // ride separate rows under the noise-tolerant "seconds" key.
    json.BeginRow();
    json.Str("row", "bytes_" + name);
    json.Num("edges", static_cast<uint64_t>(g.num_edges()));
    json.Num("raw_bytes", raw_bytes);
    json.Num("compressed_bytes", comp_bytes);
    const auto timing = [&](const char* op, const char* backend,
                            double seconds) {
      json.BeginRow();
      json.Str("shape", name);
      json.Str("op", op);
      json.Str("backend", backend);
      json.Num("seconds", seconds);
    };
    timing("scan", "raw", scan_raw);
    timing("scan", "compressed", scan_comp);
    timing("probe", "raw", probe_raw);
    timing("probe", "compressed", probe_comp);
  }
  table.Print();

  if (const char* floor_env =
          std::getenv("TDB_BENCH_MIN_COMPRESSION_RATIO")) {
    const double floor = std::atof(floor_env);
    if (min_ratio < floor) {
      std::fprintf(stderr,
                   "COMPRESSION REGRESSION: worst shape ratio %.2fx is "
                   "below the %.2fx floor\n",
                   min_ratio, floor);
      ok = false;
    }
  }

  if (!json.Write(JsonSink::PathFromArgs(argc, argv))) ok = false;
  return ok ? 0 : 1;
}
