// Reproduces Table III: cover size and runtime at k = 5 for DARC-DV, BUR+
// and TDB++ on the 12 small datasets, plus TDB++ alone on the 4 large ones
// (in the paper, the baselines cannot process those at all; here the same
// effect appears as INF/- under the per-run budget and the line-graph arc
// budget).
#include <cstdio>

#include "bench_runner.h"
#include "datasets.h"
#include "table_printer.h"

int main() {
  using namespace tdb;
  using namespace tdb::bench;

  const double scale = BenchScale();
  const double timeout = BenchTimeout(60.0);
  constexpr uint32_t kHop = 5;

  std::printf(
      "== Table III: cover size and runtime, k = %u "
      "(scale %.3g, per-run budget %.0fs) ==\n",
      kHop, scale, timeout);
  TablePrinter table({"Name", "DARC-DV size", "DARC-DV s", "BUR+ size",
                      "BUR+ s", "TDB++ size", "TDB++ s"});

  auto cells = [&](const Cell& c) {
    return std::pair<std::string, std::string>(
        FormatCount(c.cover_size, c.failed || c.timed_out),
        c.failed ? "-" : FormatSeconds(c.seconds, c.timed_out));
  };

  for (const DatasetSpec& spec : AllDatasets()) {
    CsrGraph g = BuildProxy(spec, scale);
    Cell tdbpp = RunCovered(g, CoverAlgorithm::kTdbPlusPlus, kHop, timeout);
    Cell darc, burp;
    if (spec.large) {
      // Paper behavior: only TDB++ attempts the billion-scale graphs.
      darc.failed = true;
      burp.failed = true;
    } else {
      darc = RunCovered(g, CoverAlgorithm::kDarcDv, kHop, timeout);
      burp = RunCovered(g, CoverAlgorithm::kBurPlus, kHop, timeout);
    }
    auto [ds, dt] = cells(darc);
    auto [bs, bt] = cells(burp);
    auto [ts, tt] = cells(tdbpp);
    table.AddRow({spec.name, ds, dt, bs, bt, ts, tt});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): TDB++ fastest by 2-3 orders of magnitude;\n"
      "BUR+ smallest covers but slowest; DARC-DV largest covers; only\n"
      "TDB++ completes the four large graphs.\n");
  return 0;
}
