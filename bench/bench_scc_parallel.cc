// Thread-scaling sweep of the parallel SCC condenser: one multi-SCC
// graph (strongly connected blocks, cross-block DAG edges, and a trim
// fringe of acyclic vertices), condensed by sequential Tarjan and by the
// trim + forward-backward strategy at 1/2/4/8 threads. The SccResult is
// asserted byte-identical to Tarjan's for every configuration — a
// determinism violation exits non-zero and fails CI.
//
//   TDB_BENCH_SCC_BLOCKS       strongly connected blocks   (default 24)
//   TDB_BENCH_SCC_BLOCK_N      vertices per block          (default 4000)
//   TDB_BENCH_SCC_DEGREE       extra chords per vertex     (default 20)
//   TDB_BENCH_SCC_FRINGE       acyclic fringe vertices     (default 40000)
//   TDB_BENCH_REPEATS          runs per config, best kept  (default 3)
//   TDB_BENCH_MIN_SCC_SPEEDUP  if set, fail unless FW-BW at 4 threads
//                              reaches this thread-scaling speedup over
//                              its own 1-thread run (CI perf floor;
//                              leave unset on single-core machines)
//
// The `speedup` column (and JSON metric) is the condenser's own thread
// scaling — fwbw@1 / fwbw@N — matching the other scaling benches; the
// `vs_tarjan` column additionally reports each configuration against the
// sequential Tarjan reference, whose single pass is the bar a
// multi-pass decomposition only clears with real cores.
//
// `--json <path>` additionally writes machine-readable rows for
// tools/check_bench_regression.py.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_runner.h"
#include "graph/csr_graph.h"
#include "graph/scc.h"
#include "table_printer.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace tdb;
using namespace tdb::bench;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

/// `blocks` strongly connected blocks (cycle backbone + chords), chained
/// by forward-only cross-block edges (keeps each block its own SCC), plus
/// `fringe` acyclic vertices wired into the blocks with forward edges —
/// the trim fodder that a real web/transaction graph's periphery
/// provides.
CsrGraph MakeCondensationGraph(VertexId blocks, VertexId block_n,
                               VertexId chords_per_vertex, VertexId fringe,
                               uint64_t seed) {
  Rng rng(seed);
  const VertexId core = blocks * block_n;
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(core) * (2 + chords_per_vertex) +
                static_cast<size_t>(fringe) * 2);
  for (VertexId b = 0; b < blocks; ++b) {
    const VertexId base = b * block_n;
    for (VertexId i = 0; i < block_n; ++i) {
      edges.push_back({base + i, base + (i + 1) % block_n});
    }
    const EdgeId chords = static_cast<EdgeId>(block_n) * chords_per_vertex;
    for (EdgeId c = 0; c < chords; ++c) {
      const VertexId u = static_cast<VertexId>(rng.NextBounded(block_n));
      const VertexId v = static_cast<VertexId>(rng.NextBounded(block_n));
      if (u != v) edges.push_back({base + u, base + v});
    }
    // Cross-block edges only point at later blocks: the condensation DAG
    // stays acyclic, so the blocks remain distinct SCCs.
    if (b + 1 < blocks) {
      for (int x = 0; x < 8; ++x) {
        const VertexId u =
            base + static_cast<VertexId>(rng.NextBounded(block_n));
        const VertexId later =
            b + 1 +
            static_cast<VertexId>(rng.NextBounded(blocks - b - 1));
        const VertexId v = later * block_n +
                           static_cast<VertexId>(rng.NextBounded(block_n));
        edges.push_back({u, v});
      }
    }
  }
  // Acyclic fringe: vertex core+i points only at strictly earlier
  // vertices (core or earlier fringe) and receives edges only from later
  // fringe, so no cycle ever passes through it — every fringe vertex is
  // a singleton SCC and the peel cascades through the fringe chain.
  for (VertexId i = 0; i < fringe; ++i) {
    const VertexId v = core + i;
    edges.push_back({v, static_cast<VertexId>(rng.NextBounded(core))});
    if (i > 0) {
      edges.push_back(
          {v, core + static_cast<VertexId>(rng.NextBounded(i))});
    }
  }
  return CsrGraph::FromEdges(core + fringe, std::move(edges));
}

bool SameResult(const SccResult& a, const SccResult& b) {
  return a.num_components == b.num_components && a.component == b.component &&
         a.component_size == b.component_size &&
         a.vertex_offsets == b.vertex_offsets && a.vertices == b.vertices;
}

}  // namespace

int main(int argc, char** argv) {
  const VertexId blocks =
      static_cast<VertexId>(EnvOr("TDB_BENCH_SCC_BLOCKS", 24));
  const VertexId block_n =
      static_cast<VertexId>(EnvOr("TDB_BENCH_SCC_BLOCK_N", 4000));
  const VertexId degree =
      static_cast<VertexId>(EnvOr("TDB_BENCH_SCC_DEGREE", 20));
  const VertexId fringe =
      static_cast<VertexId>(EnvOr("TDB_BENCH_SCC_FRINGE", 40000));
  const int repeats = static_cast<int>(EnvOr("TDB_BENCH_REPEATS", 3));

  CsrGraph g = MakeCondensationGraph(blocks, block_n, degree, fringe,
                                     /*seed=*/131);
  std::printf(
      "== SCC condensation scaling: trim + FW-BW vs Tarjan "
      "(%u vertices, %llu edges, %u SCC blocks + %u fringe, %d hardware "
      "threads) ==\n",
      g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
      blocks, fringe, ThreadPool::HardwareThreads());

  JsonSink json("scc_parallel");
  json.BeginRow();
  json.Str("row", "params");
  json.Num("blocks", static_cast<uint64_t>(blocks));
  json.Num("block_n", static_cast<uint64_t>(block_n));
  json.Num("degree", static_cast<uint64_t>(degree));
  json.Num("fringe", static_cast<uint64_t>(fringe));

  struct Config {
    SccAlgorithm algorithm;
    int threads;
  };
  const Config configs[] = {
      {SccAlgorithm::kTarjan, 1},      {SccAlgorithm::kParallelFwBw, 1},
      {SccAlgorithm::kParallelFwBw, 2}, {SccAlgorithm::kParallelFwBw, 4},
      {SccAlgorithm::kParallelFwBw, 8},
  };

  TablePrinter table({"algo", "threads", "seconds", "speedup", "vs_tarjan",
                      "components", "trim_peeled", "fwbw_steps"});
  bool ok = true;
  double tarjan_seconds = 0.0;
  double fwbw_base_seconds = 0.0;
  SccResult reference;
  for (const Config& config : configs) {
    SccOptions options;
    options.algorithm = config.algorithm;
    options.num_threads = config.threads;
    double best_seconds = 0.0;
    SccResult result;
    SccStats stats;
    for (int rep = 0; rep < repeats; ++rep) {
      SccStats rep_stats;
      Timer timer;
      SccResult r = CondenseScc(g, options, nullptr, &rep_stats);
      const double seconds = timer.ElapsedSeconds();
      if (rep == 0 || seconds < best_seconds) {
        best_seconds = seconds;
        stats = rep_stats;
      }
      result = std::move(r);
    }
    if (config.algorithm == SccAlgorithm::kTarjan) {
      tarjan_seconds = best_seconds;
      reference = std::move(result);
    } else {
      if (config.threads == 1) fwbw_base_seconds = best_seconds;
      if (!SameResult(reference, result)) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: FW-BW at %d threads differs "
                     "from Tarjan's canonical SccResult\n",
                     config.threads);
        ok = false;
      }
    }
    const double speedup = config.algorithm == SccAlgorithm::kTarjan
                               ? 1.0
                               : fwbw_base_seconds / best_seconds;
    char seconds_buf[32], speedup_buf[32], vs_tarjan_buf[32];
    std::snprintf(seconds_buf, sizeof seconds_buf, "%.4f", best_seconds);
    std::snprintf(speedup_buf, sizeof speedup_buf, "%.2fx", speedup);
    std::snprintf(vs_tarjan_buf, sizeof vs_tarjan_buf, "%.2fx",
                  tarjan_seconds / best_seconds);
    table.AddRow({SccAlgorithmName(config.algorithm),
                  std::to_string(config.threads), seconds_buf, speedup_buf,
                  vs_tarjan_buf, FormatCount(stats.components),
                  FormatCount(stats.trim_peeled),
                  FormatCount(stats.fwbw_partitions)});
    json.BeginRow();
    json.Str("algo", SccAlgorithmName(config.algorithm));
    json.Num("threads", static_cast<uint64_t>(config.threads));
    json.Num("seconds", best_seconds);
    json.Num("speedup", speedup);
    json.Num("cover", static_cast<uint64_t>(stats.components));
    if (config.algorithm == SccAlgorithm::kParallelFwBw &&
        config.threads == 4) {
      if (const char* floor_env = std::getenv("TDB_BENCH_MIN_SCC_SPEEDUP")) {
        const double floor = std::atof(floor_env);
        if (speedup < floor) {
          std::fprintf(stderr,
                       "SPEEDUP REGRESSION: FW-BW at 4 threads reached "
                       "%.2fx over its 1-thread run, below the %.2fx "
                       "floor\n",
                       speedup, floor);
          ok = false;
        }
      }
    }
  }
  table.Print();

  if (!json.Write(JsonSink::PathFromArgs(argc, argv))) ok = false;
  return ok ? 0 : 1;
}
