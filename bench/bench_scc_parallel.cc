// Thread-scaling sweep of the parallel SCC condensers over two graph
// shapes:
//
//   * fringe — strongly connected blocks, cross-block DAG edges, and a
//     trim fringe of acyclic vertices: the shape FW-BW's trim + pivot
//     decomposition was built for.
//   * chain  — a long chain of SCC blocks linked only block-to-block:
//     every FW-BW pivot peels a single block and re-scans the remainder,
//     so the partition recursion degenerates to a sequential sweep —
//     while UFSCC workers spread over the blocks and never rescan. This
//     is the headline shape for SccAlgorithm::kUnionFind.
//
// Each shape is condensed by sequential Tarjan and by every parallel
// strategy at 1/2/4/8 threads. The SccResult is asserted byte-identical
// to Tarjan's for EVERY algorithm and thread count — the loop iterates
// the algorithm list, so future strategies are covered automatically —
// and a determinism violation exits non-zero and fails CI.
//
//   TDB_BENCH_SCC_BLOCKS        fringe shape: SCC blocks      (default 24)
//   TDB_BENCH_SCC_BLOCK_N       fringe shape: block vertices  (default 4000)
//   TDB_BENCH_SCC_DEGREE        extra chords per vertex       (default 20)
//   TDB_BENCH_SCC_FRINGE        acyclic fringe vertices       (default 40000)
//   TDB_BENCH_SCC_CHAIN_BLOCKS  chain shape: SCC blocks       (default 256)
//   TDB_BENCH_SCC_CHAIN_BLOCK_N chain shape: block vertices   (default 500)
//   TDB_BENCH_REPEATS           runs per config, best kept    (default 3)
//   TDB_BENCH_MIN_SCC_SPEEDUP   if set, fail unless FW-BW at 4 threads
//                               reaches this thread-scaling speedup over
//                               its own 1-thread run on the fringe shape
//   TDB_BENCH_MIN_UF_VS_FWBW    if set, fail unless UFSCC at 4 threads
//                               beats FW-BW at 4 threads by this factor
//                               on the chain shape (CI perf floors; leave
//                               both unset on single-core machines)
//
// The `speedup` column (and JSON metric) is each condenser's own thread
// scaling — algo@1 / algo@N on the same shape; the `vs_tarjan` column
// additionally reports each configuration against the sequential Tarjan
// reference, whose single pass is the bar a multi-pass decomposition
// only clears with real cores.
//
// `--json <path>` additionally writes machine-readable rows (keyed by
// shape, algo and threads) for tools/check_bench_regression.py.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_runner.h"
#include "graph/csr_graph.h"
#include "graph/scc.h"
#include "table_printer.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace tdb;
using namespace tdb::bench;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

/// `blocks` strongly connected blocks (cycle backbone + chords), chained
/// by forward-only cross-block edges (keeps each block its own SCC), plus
/// `fringe` acyclic vertices wired into the blocks with forward edges —
/// the trim fodder that a real web/transaction graph's periphery
/// provides.
CsrGraph MakeCondensationGraph(VertexId blocks, VertexId block_n,
                               VertexId chords_per_vertex, VertexId fringe,
                               uint64_t seed) {
  Rng rng(seed);
  const VertexId core = blocks * block_n;
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(core) * (2 + chords_per_vertex) +
                static_cast<size_t>(fringe) * 2);
  for (VertexId b = 0; b < blocks; ++b) {
    const VertexId base = b * block_n;
    for (VertexId i = 0; i < block_n; ++i) {
      edges.push_back({base + i, base + (i + 1) % block_n});
    }
    const EdgeId chords = static_cast<EdgeId>(block_n) * chords_per_vertex;
    for (EdgeId c = 0; c < chords; ++c) {
      const VertexId u = static_cast<VertexId>(rng.NextBounded(block_n));
      const VertexId v = static_cast<VertexId>(rng.NextBounded(block_n));
      if (u != v) edges.push_back({base + u, base + v});
    }
    // Cross-block edges only point at later blocks: the condensation DAG
    // stays acyclic, so the blocks remain distinct SCCs.
    if (b + 1 < blocks) {
      for (int x = 0; x < 8; ++x) {
        const VertexId u =
            base + static_cast<VertexId>(rng.NextBounded(block_n));
        const VertexId later =
            b + 1 +
            static_cast<VertexId>(rng.NextBounded(blocks - b - 1));
        const VertexId v = later * block_n +
                           static_cast<VertexId>(rng.NextBounded(block_n));
        edges.push_back({u, v});
      }
    }
  }
  // Acyclic fringe: vertex core+i points only at strictly earlier
  // vertices (core or earlier fringe) and receives edges only from later
  // fringe, so no cycle ever passes through it — every fringe vertex is
  // a singleton SCC and the peel cascades through the fringe chain.
  for (VertexId i = 0; i < fringe; ++i) {
    const VertexId v = core + i;
    edges.push_back({v, static_cast<VertexId>(rng.NextBounded(core))});
    if (i > 0) {
      edges.push_back(
          {v, core + static_cast<VertexId>(rng.NextBounded(i))});
    }
  }
  return CsrGraph::FromEdges(core + fringe, std::move(edges));
}

/// Chain of SCCs: `blocks` strongly connected blocks (cycle backbone +
/// a few chords) where block b feeds ONLY block b+1. The condensation
/// DAG is a path, so a pivot's FW ∩ BW is always a single block and
/// FW-BW recurses once per block, re-scanning the remainder each round;
/// with no trim fodder, the peel finds nothing to help with. UFSCC has
/// no such structure dependence: workers start interleaved across the
/// vertex space and digest the blocks concurrently.
CsrGraph MakeChainOfSccs(VertexId blocks, VertexId block_n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(blocks) * block_n * 4);
  for (VertexId b = 0; b < blocks; ++b) {
    const VertexId base = b * block_n;
    for (VertexId i = 0; i < block_n; ++i) {
      edges.push_back({base + i, base + (i + 1) % block_n});
      // Two chords per vertex keep the blocks non-trivial for the
      // in-block traversal without changing the SCC structure.
      for (int c = 0; c < 2; ++c) {
        const VertexId v = static_cast<VertexId>(rng.NextBounded(block_n));
        if (v != i) edges.push_back({base + i, base + v});
      }
    }
    if (b + 1 < blocks) {
      for (int x = 0; x < 4; ++x) {
        edges.push_back(
            {base + static_cast<VertexId>(rng.NextBounded(block_n)),
             base + block_n +
                 static_cast<VertexId>(rng.NextBounded(block_n))});
      }
    }
  }
  return CsrGraph::FromEdges(blocks * block_n, std::move(edges));
}

bool SameResult(const SccResult& a, const SccResult& b) {
  return a.num_components == b.num_components && a.component == b.component &&
         a.component_size == b.component_size &&
         a.vertex_offsets == b.vertex_offsets && a.vertices == b.vertices;
}

}  // namespace

int main(int argc, char** argv) {
  const VertexId blocks =
      static_cast<VertexId>(EnvOr("TDB_BENCH_SCC_BLOCKS", 24));
  const VertexId block_n =
      static_cast<VertexId>(EnvOr("TDB_BENCH_SCC_BLOCK_N", 4000));
  const VertexId degree =
      static_cast<VertexId>(EnvOr("TDB_BENCH_SCC_DEGREE", 20));
  const VertexId fringe =
      static_cast<VertexId>(EnvOr("TDB_BENCH_SCC_FRINGE", 40000));
  const VertexId chain_blocks =
      static_cast<VertexId>(EnvOr("TDB_BENCH_SCC_CHAIN_BLOCKS", 256));
  const VertexId chain_block_n =
      static_cast<VertexId>(EnvOr("TDB_BENCH_SCC_CHAIN_BLOCK_N", 500));
  const int repeats = static_cast<int>(EnvOr("TDB_BENCH_REPEATS", 3));

  struct Shape {
    const char* name;
    CsrGraph graph;
  };
  const Shape shapes[] = {
      {"fringe", MakeCondensationGraph(blocks, block_n, degree, fringe,
                                       /*seed=*/131)},
      {"chain", MakeChainOfSccs(chain_blocks, chain_block_n, /*seed=*/137)},
  };
  std::printf(
      "== SCC condensation scaling: Tarjan vs FW-BW vs UFSCC "
      "(fringe: %u vertices / %llu edges; chain: %u vertices / %llu edges; "
      "%d hardware threads) ==\n",
      shapes[0].graph.num_vertices(),
      static_cast<unsigned long long>(shapes[0].graph.num_edges()),
      shapes[1].graph.num_vertices(),
      static_cast<unsigned long long>(shapes[1].graph.num_edges()),
      ThreadPool::HardwareThreads());

  JsonSink json("scc_parallel");
  json.BeginRow();
  json.Str("row", "params");
  json.Num("blocks", static_cast<uint64_t>(blocks));
  json.Num("block_n", static_cast<uint64_t>(block_n));
  json.Num("degree", static_cast<uint64_t>(degree));
  json.Num("fringe", static_cast<uint64_t>(fringe));
  json.Num("chain_blocks", static_cast<uint64_t>(chain_blocks));
  json.Num("chain_block_n", static_cast<uint64_t>(chain_block_n));

  // Every parallel strategy sweeps the same thread counts; add an
  // algorithm here and the determinism cross-check + rows follow.
  const SccAlgorithm parallel_algos[] = {SccAlgorithm::kParallelFwBw,
                                         SccAlgorithm::kUnionFind};
  const int thread_counts[] = {1, 2, 4, 8};

  TablePrinter table({"shape", "algo", "threads", "seconds", "speedup",
                      "vs_tarjan", "components", "trim_peeled",
                      "fwbw_steps"});
  bool ok = true;
  // seconds at (algo, threads) on the current shape; filled in sweep
  // order so the @1 baseline and the cross-algorithm floors can look
  // their operands up by key.
  for (const Shape& shape : shapes) {
    std::map<std::pair<SccAlgorithm, int>, double> seconds_of;
    SccResult reference;
    auto run_config = [&](SccAlgorithm algo, int threads) {
      SccOptions options;
      options.algorithm = algo;
      options.num_threads = threads;
      double best_seconds = 0.0;
      SccResult result;
      SccStats stats;
      for (int rep = 0; rep < repeats; ++rep) {
        SccStats rep_stats;
        Timer timer;
        SccResult r = CondenseScc(shape.graph, options, nullptr, &rep_stats);
        const double seconds = timer.ElapsedSeconds();
        if (rep == 0 || seconds < best_seconds) {
          best_seconds = seconds;
          stats = rep_stats;
        }
        result = std::move(r);
      }
      seconds_of[{algo, threads}] = best_seconds;
      if (algo == SccAlgorithm::kTarjan) {
        reference = std::move(result);
      } else if (!SameResult(reference, result)) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s at %d threads differs from "
                     "Tarjan's canonical SccResult on the %s shape\n",
                     SccAlgorithmName(algo), threads, shape.name);
        ok = false;
      }
      const double base = algo == SccAlgorithm::kTarjan
                              ? best_seconds
                              : seconds_of[{algo, 1}];
      const double speedup = base / best_seconds;
      const double tarjan_seconds =
          seconds_of[{SccAlgorithm::kTarjan, 1}];
      char seconds_buf[32], speedup_buf[32], vs_tarjan_buf[32];
      std::snprintf(seconds_buf, sizeof seconds_buf, "%.4f", best_seconds);
      std::snprintf(speedup_buf, sizeof speedup_buf, "%.2fx", speedup);
      std::snprintf(vs_tarjan_buf, sizeof vs_tarjan_buf, "%.2fx",
                    tarjan_seconds / best_seconds);
      table.AddRow({shape.name, SccAlgorithmName(algo),
                    std::to_string(threads), seconds_buf, speedup_buf,
                    vs_tarjan_buf, FormatCount(stats.components),
                    FormatCount(stats.trim_peeled),
                    FormatCount(stats.fwbw_partitions)});
      json.BeginRow();
      json.Str("shape", shape.name);
      json.Str("algo", SccAlgorithmName(algo));
      json.Num("threads", static_cast<uint64_t>(threads));
      json.Num("seconds", best_seconds);
      json.Num("speedup", speedup);
      json.Num("cover", static_cast<uint64_t>(stats.components));
    };

    run_config(SccAlgorithm::kTarjan, 1);
    for (SccAlgorithm algo : parallel_algos) {
      for (int threads : thread_counts) run_config(algo, threads);
    }

    // CI perf floors (skipped when the env vars are unset).
    if (std::string(shape.name) == "fringe") {
      if (const char* floor_env = std::getenv("TDB_BENCH_MIN_SCC_SPEEDUP")) {
        const double floor = std::atof(floor_env);
        const double speedup =
            seconds_of[{SccAlgorithm::kParallelFwBw, 1}] /
            seconds_of[{SccAlgorithm::kParallelFwBw, 4}];
        if (speedup < floor) {
          std::fprintf(stderr,
                       "SPEEDUP REGRESSION: FW-BW at 4 threads reached "
                       "%.2fx over its 1-thread run, below the %.2fx "
                       "floor\n",
                       speedup, floor);
          ok = false;
        }
      }
    } else if (std::string(shape.name) == "chain") {
      if (const char* floor_env = std::getenv("TDB_BENCH_MIN_UF_VS_FWBW")) {
        const double floor = std::atof(floor_env);
        const double advantage =
            seconds_of[{SccAlgorithm::kParallelFwBw, 4}] /
            seconds_of[{SccAlgorithm::kUnionFind, 4}];
        if (advantage < floor) {
          std::fprintf(stderr,
                       "SPEEDUP REGRESSION: UFSCC at 4 threads is only "
                       "%.2fx of FW-BW at 4 threads on the chain shape, "
                       "below the %.2fx floor\n",
                       advantage, floor);
          ok = false;
        }
      }
    }
  }
  table.Print();

  if (!json.Write(JsonSink::PathFromArgs(argc, argv))) ok = false;
  return ok ? 0 : 1;
}
