// Thread-scaling sweep of the SCC-partitioned engine: one multi-SCC graph,
// TDB++ solved at 1/2/4/8 worker threads, wall time and speedup per row.
// The graph is a disjoint union of strongly connected blocks (a cycle
// backbone per block keeps each one a single SCC, random chords make the
// per-component solve non-trivial), so the engine has independent work for
// every worker. Covers are asserted identical across thread counts — the
// engine's exactness guarantee, measured rather than assumed.
//
//   TDB_BENCH_BLOCKS    number of SCC blocks        (default 12)
//   TDB_BENCH_BLOCK_N   vertices per block          (default 600)
//   TDB_BENCH_DEGREE    extra chords per vertex     (default 6)
//   TDB_BENCH_REPEATS   runs per thread count, best kept (default 3)
//
// `--json <path>` additionally writes machine-readable rows for
// tools/check_bench_regression.py.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_runner.h"
#include "core/solver.h"
#include "graph/csr_graph.h"
#include "graph/scc.h"
#include "table_printer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace tdb;
using namespace tdb::bench;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

/// `blocks` disjoint strongly connected blocks of `block_n` vertices: a
/// cycle backbone (guarantees one SCC per block) plus `chords_per_vertex`
/// random intra-block chords (makes validation work meaningful).
CsrGraph MakeMultiSccGraph(VertexId blocks, VertexId block_n,
                           VertexId chords_per_vertex, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(blocks) * block_n *
                (1 + chords_per_vertex));
  for (VertexId b = 0; b < blocks; ++b) {
    const VertexId base = b * block_n;
    for (VertexId i = 0; i < block_n; ++i) {
      edges.push_back({base + i, base + (i + 1) % block_n});
    }
    const EdgeId chords = static_cast<EdgeId>(block_n) * chords_per_vertex;
    for (EdgeId c = 0; c < chords; ++c) {
      const VertexId u = static_cast<VertexId>(rng.NextBounded(block_n));
      const VertexId v = static_cast<VertexId>(rng.NextBounded(block_n));
      if (u != v) edges.push_back({base + u, base + v});
    }
  }
  return CsrGraph::FromEdges(blocks * block_n, std::move(edges));
}

}  // namespace

int main(int argc, char** argv) {
  const VertexId blocks =
      static_cast<VertexId>(EnvOr("TDB_BENCH_BLOCKS", 12));
  const VertexId block_n =
      static_cast<VertexId>(EnvOr("TDB_BENCH_BLOCK_N", 600));
  const VertexId degree = static_cast<VertexId>(EnvOr("TDB_BENCH_DEGREE", 6));

  CsrGraph g = MakeMultiSccGraph(blocks, block_n, degree, /*seed=*/71);
  SccResult scc = ComputeScc(g);
  VertexId nontrivial = 0;
  for (VertexId c = 0; c < scc.num_components; ++c) {
    if (scc.component_size[c] >= 3) ++nontrivial;
  }
  std::printf(
      "== Parallel scaling: TDB++ over %u SCC blocks "
      "(%u vertices, %llu edges, %u non-trivial SCCs, %d hardware "
      "threads) ==\n",
      blocks, g.num_vertices(),
      static_cast<unsigned long long>(g.num_edges()), nontrivial,
      ThreadPool::HardwareThreads());

  CoverOptions opts;
  opts.k = 5;
  opts.min_component_parallel_size = 1;

  const int repeats = static_cast<int>(EnvOr("TDB_BENCH_REPEATS", 3));

  JsonSink json("parallel_scaling");
  json.BeginRow();
  json.Str("row", "params");
  json.Num("blocks", static_cast<uint64_t>(blocks));
  json.Num("block_n", static_cast<uint64_t>(block_n));
  json.Num("degree", static_cast<uint64_t>(degree));

  TablePrinter table({"threads", "seconds", "speedup", "cover"});
  double base_seconds = 0.0;
  std::vector<VertexId> base_cover;
  for (int threads : {1, 2, 4, 8}) {
    opts.num_threads = threads;
    // Best of `repeats`: scheduling noise only ever inflates a run.
    double best_seconds = 0.0;
    CoverResult r;
    for (int rep = 0; rep < repeats; ++rep) {
      r = SolveCycleCover(g, CoverAlgorithm::kTdbPlusPlus, opts);
      if (!r.status.ok()) {
        std::fprintf(stderr, "solve failed: %s\n",
                     r.status.ToString().c_str());
        return 1;
      }
      if (rep == 0 || r.stats.elapsed_seconds < best_seconds) {
        best_seconds = r.stats.elapsed_seconds;
      }
    }
    if (threads == 1) {
      base_seconds = best_seconds;
      base_cover = r.cover;
    } else if (r.cover != base_cover) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: cover at %d threads differs "
                   "from the sequential cover\n",
                   threads);
      return 1;
    }
    char seconds[32], speedup[32];
    std::snprintf(seconds, sizeof seconds, "%.3f", best_seconds);
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  base_seconds / best_seconds);
    table.AddRow({std::to_string(threads), seconds, speedup,
                  FormatCount(r.cover.size())});
    json.BeginRow();
    json.Num("threads", static_cast<uint64_t>(threads));
    json.Num("seconds", best_seconds);
    json.Num("speedup", base_seconds / best_seconds);
    json.Num("cover", static_cast<uint64_t>(r.cover.size()));
  }
  table.Print();
  return json.Write(JsonSink::PathFromArgs(argc, argv)) ? 0 : 1;
}
