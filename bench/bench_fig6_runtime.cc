// Reproduces Figure 6: runtime (seconds) of BUR+, DARC-DV and TDB++ while
// k varies from 3 to 7, one series block per small dataset. Values over
// the per-run budget print as INF, matching the paper's plots.
#include <cstdio>

#include "bench_runner.h"
#include "datasets.h"
#include "table_printer.h"

int main() {
  using namespace tdb;
  using namespace tdb::bench;

  const double scale = BenchScale();
  const double timeout = BenchTimeout(5.0);

  std::printf(
      "== Figure 6: runtime vs k (scale %.3g, per-run budget %.0fs) ==\n",
      scale, timeout);
  for (const DatasetSpec& spec : SmallDatasets()) {
    CsrGraph g = BuildProxy(spec, scale);
    std::printf("\n-- %s (%s) --\n", spec.name, spec.full_name);
    TablePrinter table({"k", "BUR+ s", "DARC-DV s", "TDB++ s"});
    for (uint32_t k = 3; k <= 7; ++k) {
      Cell burp = RunCovered(g, CoverAlgorithm::kBurPlus, k, timeout);
      Cell darc = RunCovered(g, CoverAlgorithm::kDarcDv, k, timeout);
      Cell tdbpp = RunCovered(g, CoverAlgorithm::kTdbPlusPlus, k, timeout);
      table.AddRow({std::to_string(k),
                    FormatSeconds(burp.seconds, burp.timed_out),
                    darc.failed ? "-"
                                : FormatSeconds(darc.seconds, darc.timed_out),
                    FormatSeconds(tdbpp.seconds, tdbpp.timed_out)});
      std::fflush(stdout);
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape (paper): TDB++ fastest everywhere; BUR+ degrades\n"
      "sharply as k grows (INF on the denser graphs); DARC-DV in between.\n");
  return 0;
}
