// Shared plumbing for the table/figure reproduction binaries: one timed
// solver invocation with the paper's INF semantics and optional
// verification.
#ifndef TDB_BENCH_BENCH_RUNNER_H_
#define TDB_BENCH_BENCH_RUNNER_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/solver.h"
#include "core/verifier.h"
#include "graph/csr_graph.h"

namespace tdb::bench {

/// Machine-readable benchmark output for the CI regression pipeline:
/// flat key->value rows serialized as
///   {"bench": "<name>", "rows": [{"k1": v1, ...}, ...]}
/// Enabled by a `--json <path>` argument pair; a bench without it runs
/// human-readable only. tools/check_bench_regression.py consumes the
/// files and compares them against bench/baselines/.
class JsonSink {
 public:
  explicit JsonSink(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  /// The path following "--json" in argv, or "" when absent.
  static std::string PathFromArgs(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") return argv[i + 1];
    }
    return "";
  }

  void BeginRow() { rows_.emplace_back(); }

  void Num(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    rows_.back().emplace_back(key, buf);
  }

  void Num(const std::string& key, uint64_t value) {
    rows_.back().emplace_back(key, std::to_string(value));
  }

  void Str(const std::string& key, const std::string& value) {
    rows_.back().emplace_back(key, "\"" + Escaped(value) + "\"");
  }

  /// Writes the collected rows to `path`; no-op success when `path` is
  /// empty (JSON output not requested).
  bool Write(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write JSON to %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"rows\": [", bench_.c_str());
    for (size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "%s{", r == 0 ? "" : ", ");
      for (size_t i = 0; i < rows_[r].size(); ++i) {
        std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                     Escaped(rows_[r][i].first).c_str(),
                     rows_[r][i].second.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    return true;
  }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  /// Each row: (key, pre-rendered JSON value literal) in insert order.
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/// One benchmark cell: cover size + wall time, with failure markers.
struct Cell {
  uint64_t cover_size = 0;
  double seconds = 0.0;
  bool timed_out = false;
  bool failed = false;  // e.g. line-graph budget exhausted
};

/// Per-run wall-clock budget from TDB_BENCH_TIMEOUT (seconds; default
/// `fallback`). Runs over budget report the paper's "INF".
inline double BenchTimeout(double fallback = 30.0) {
  const char* env = std::getenv("TDB_BENCH_TIMEOUT");
  return env != nullptr ? std::atof(env) : fallback;
}

/// Set TDB_BENCH_VERIFY=1 to verify feasibility of every produced cover
/// (doubles the runtime; off by default).
inline bool BenchVerify() {
  const char* env = std::getenv("TDB_BENCH_VERIFY");
  return env != nullptr && env[0] == '1';
}

/// Runs `algo` on `graph` under the given hop bound and time limit.
inline Cell RunCovered(const CsrGraph& graph, CoverAlgorithm algo,
                       uint32_t k, double time_limit,
                       bool include_two_cycles = false) {
  CoverOptions opts;
  opts.k = k;
  opts.include_two_cycles = include_two_cycles;
  opts.time_limit_seconds = time_limit;
  CoverResult r = SolveCycleCover(graph, algo, opts);
  Cell cell;
  cell.seconds = r.stats.elapsed_seconds;
  if (r.status.IsTimedOut()) {
    cell.timed_out = true;
    return cell;
  }
  if (!r.status.ok()) {
    cell.failed = true;
    return cell;
  }
  cell.cover_size = r.cover.size();
  if (BenchVerify()) {
    VerifyReport rep = VerifyCover(graph, r.cover, opts, /*minimality=*/false);
    if (!rep.feasible) {
      std::fprintf(stderr, "VERIFICATION FAILED: %s k=%u: %s\n",
                   AlgorithmName(algo), k, rep.ToString().c_str());
      std::abort();
    }
  }
  return cell;
}

}  // namespace tdb::bench

#endif  // TDB_BENCH_BENCH_RUNNER_H_
