// Shared plumbing for the table/figure reproduction binaries: one timed
// solver invocation with the paper's INF semantics and optional
// verification.
#ifndef TDB_BENCH_BENCH_RUNNER_H_
#define TDB_BENCH_BENCH_RUNNER_H_

#include <cstdlib>
#include <string>

#include "core/solver.h"
#include "core/verifier.h"
#include "graph/csr_graph.h"

namespace tdb::bench {

/// One benchmark cell: cover size + wall time, with failure markers.
struct Cell {
  uint64_t cover_size = 0;
  double seconds = 0.0;
  bool timed_out = false;
  bool failed = false;  // e.g. line-graph budget exhausted
};

/// Per-run wall-clock budget from TDB_BENCH_TIMEOUT (seconds; default
/// `fallback`). Runs over budget report the paper's "INF".
inline double BenchTimeout(double fallback = 30.0) {
  const char* env = std::getenv("TDB_BENCH_TIMEOUT");
  return env != nullptr ? std::atof(env) : fallback;
}

/// Set TDB_BENCH_VERIFY=1 to verify feasibility of every produced cover
/// (doubles the runtime; off by default).
inline bool BenchVerify() {
  const char* env = std::getenv("TDB_BENCH_VERIFY");
  return env != nullptr && env[0] == '1';
}

/// Runs `algo` on `graph` under the given hop bound and time limit.
inline Cell RunCovered(const CsrGraph& graph, CoverAlgorithm algo,
                       uint32_t k, double time_limit,
                       bool include_two_cycles = false) {
  CoverOptions opts;
  opts.k = k;
  opts.include_two_cycles = include_two_cycles;
  opts.time_limit_seconds = time_limit;
  CoverResult r = SolveCycleCover(graph, algo, opts);
  Cell cell;
  cell.seconds = r.stats.elapsed_seconds;
  if (r.status.IsTimedOut()) {
    cell.timed_out = true;
    return cell;
  }
  if (!r.status.ok()) {
    cell.failed = true;
    return cell;
  }
  cell.cover_size = r.cover.size();
  if (BenchVerify()) {
    VerifyReport rep = VerifyCover(graph, r.cover, opts, /*minimality=*/false);
    if (!rep.feasible) {
      std::fprintf(stderr, "VERIFICATION FAILED: %s k=%u: %s\n",
                   AlgorithmName(algo), k, rep.ToString().c_str());
      std::abort();
    }
  }
  return cell;
}

}  // namespace tdb::bench

#endif  // TDB_BENCH_BENCH_RUNNER_H_
