// Quality certification (beyond the paper): compares every heuristic's
// cover size against the vertex-disjoint cycle-packing lower bound, giving
// a certified per-dataset approximation ratio without solving the NP-hard
// optimum. The paper reports relative sizes between heuristics only; this
// anchors them to a bound.
#include <cstdio>

#include "bench_runner.h"
#include "core/lower_bound.h"
#include "datasets.h"
#include "table_printer.h"

int main() {
  using namespace tdb;
  using namespace tdb::bench;

  const double scale = BenchScale();
  const double timeout = BenchTimeout(30.0);
  constexpr uint32_t kHop = 5;

  std::printf(
      "== Quality: cover size vs disjoint-cycle lower bound (k = %u, "
      "scale %.3g) ==\n",
      kHop, scale);
  TablePrinter table({"Name", "lower bound", "TDB++", "ratio", "BUR+",
                      "ratio", "packing s"});
  for (const DatasetSpec& spec : SmallDatasets()) {
    CsrGraph g = BuildProxy(spec, scale);
    CoverOptions opts;
    opts.k = kHop;
    opts.time_limit_seconds = timeout;
    Timer timer;
    CyclePacking packing = PackDisjointCycles(g, opts);
    const double pack_s = timer.ElapsedSeconds();
    Cell tdbpp = RunCovered(g, CoverAlgorithm::kTdbPlusPlus, kHop, timeout);
    Cell burp = RunCovered(g, CoverAlgorithm::kBurPlus, kHop, timeout);
    auto ratio = [&](const Cell& c) -> std::string {
      if (c.timed_out || c.failed || packing.LowerBound() == 0) return "-";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f",
                    double(c.cover_size) / double(packing.LowerBound()));
      return buf;
    };
    table.AddRow({spec.name, FormatCount(packing.LowerBound()),
                  FormatCount(tdbpp.cover_size,
                              tdbpp.timed_out || tdbpp.failed),
                  ratio(tdbpp),
                  FormatCount(burp.cover_size, burp.timed_out || burp.failed),
                  ratio(burp), FormatSeconds(pack_s, false)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nReading: ratios certify how far a heuristic can possibly be from\n"
      "optimal (optimal lies between the lower bound and each cover).\n");
  return 0;
}
