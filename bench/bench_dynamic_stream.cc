// Streaming maintenance (beyond the paper's static tables; the setting of
// the DARC baseline's original publication): amortized per-edge cost of
// incremental DARC along a transaction stream vs recomputing from scratch
// at checkpoints.
//
// By default the stream is a seeded shuffle of three dataset proxies.
// With `--stream FILE [--k N]` it instead replays a timestamped stream
// written by `tdb_graphgen --stream` — the exact workload tdb_serve
// replays, so the offline comparator and the serving layer are measured
// on identical input.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/darc.h"
#include "core/dynamic_darc.h"
#include "datasets.h"
#include "graph/graph_io.h"
#include "table_printer.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace tdb;
  using namespace tdb::bench;

  const double scale = BenchScale();
  uint32_t hop = 4;
  std::string stream_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stream") == 0 && i + 1 < argc) {
      stream_path = argv[++i];
    } else if (std::strcmp(argv[i], "--k") == 0 && i + 1 < argc) {
      hop = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: bench_dynamic_stream [--stream FILE] [--k N]\n");
      return 2;
    }
  }

  std::printf("== Dynamic stream: incremental DARC vs recompute (k = %u) "
              "==\n",
              hop);
  TablePrinter table({"Name", "edges", "incr total s", "us/edge",
                      "recompute s", "speedup", "incr |S|", "static |S|"});

  struct Workload {
    std::string name;
    VertexId n;
    std::vector<Edge> stream;
  };
  std::vector<Workload> workloads;
  if (!stream_path.empty()) {
    std::vector<TimedEdge> timed;
    Status st = LoadEdgeStreamText(stream_path, &timed);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot load stream: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::stable_sort(timed.begin(), timed.end(),
                     [](const TimedEdge& a, const TimedEdge& b) {
                       return a.timestamp < b.timestamp;
                     });
    Workload w;
    w.name = stream_path;
    w.n = 0;
    for (const TimedEdge& e : timed) {
      w.n = std::max(w.n, std::max(e.src, e.dst) + 1);
      w.stream.push_back(Edge{e.src, e.dst});
    }
    workloads.push_back(std::move(w));
  } else {
    for (const char* name : {"GNU", "EU", "WKV"}) {
      const DatasetSpec* spec = FindDataset(name);
      CsrGraph g = BuildProxy(*spec, scale * 0.5);
      Workload w;
      w.name = name;
      w.n = g.num_vertices();
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        w.stream.push_back(Edge{g.EdgeSrc(e), g.EdgeDst(e)});
      }
      Rng rng(7);
      for (size_t i = w.stream.size(); i > 1; --i) {
        std::swap(w.stream[i - 1], w.stream[rng.NextBounded(i)]);
      }
      workloads.push_back(std::move(w));
    }
  }

  for (const Workload& w : workloads) {
    const std::vector<Edge>& stream = w.stream;
    CsrGraph g = CsrGraph::FromEdges(w.n, stream);

    CoverOptions opts;
    opts.k = hop;

    Timer timer;
    DynamicDarc dynamic(w.n, opts);
    for (const Edge& e : stream) dynamic.InsertEdge(e.src, e.dst);
    const double incr_s = timer.ElapsedSeconds();

    timer.Reset();
    DarcEdgeResult fixed = SolveDarcEdgeCover(g, opts);
    const double static_s = timer.ElapsedSeconds();

    char us[32], speed[32];
    std::snprintf(us, sizeof(us), "%.1f",
                  incr_s * 1e6 / double(stream.size()));
    // Speedup model: recomputing after each arrival costs ~static_s per
    // checkpoint vs one incremental insertion.
    std::snprintf(speed, sizeof(speed), "%.0fx",
                  incr_s > 0 ? static_s / (incr_s / double(stream.size()))
                             : 0.0);
    table.AddRow({w.name, FormatCount(stream.size()),
                  FormatSeconds(incr_s, false), us,
                  FormatSeconds(static_s, false), speed,
                  FormatCount(dynamic.EdgeCover().size()),
                  FormatCount(fixed.edge_cover.size())});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nReading: one incremental insertion costs microseconds — the\n"
      "speedup column is how much cheaper that is than re-running the\n"
      "static solver after each arrival (the paper's fraud-detection\n"
      "motivation is exactly this streaming regime).\n");
  return 0;
}
