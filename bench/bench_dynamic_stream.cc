// Streaming maintenance (beyond the paper's static tables; the setting of
// the DARC baseline's original publication): amortized per-edge cost of
// incremental DARC along a transaction stream vs recomputing from scratch
// at checkpoints.
#include <cstdio>

#include "core/darc.h"
#include "core/dynamic_darc.h"
#include "datasets.h"
#include "table_printer.h"
#include "util/rng.h"
#include "util/timer.h"

int main() {
  using namespace tdb;
  using namespace tdb::bench;

  const double scale = BenchScale();
  constexpr uint32_t kHop = 4;

  std::printf("== Dynamic stream: incremental DARC vs recompute (k = %u) "
              "==\n",
              kHop);
  TablePrinter table({"Name", "edges", "incr total s", "us/edge",
                      "recompute s", "speedup", "incr |S|", "static |S|"});
  for (const char* name : {"GNU", "EU", "WKV"}) {
    const DatasetSpec* spec = FindDataset(name);
    CsrGraph g = BuildProxy(*spec, scale * 0.5);
    std::vector<Edge> stream;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      stream.push_back(Edge{g.EdgeSrc(e), g.EdgeDst(e)});
    }
    Rng rng(7);
    for (size_t i = stream.size(); i > 1; --i) {
      std::swap(stream[i - 1], stream[rng.NextBounded(i)]);
    }

    CoverOptions opts;
    opts.k = kHop;

    Timer timer;
    DynamicDarc dynamic(g.num_vertices(), opts);
    for (const Edge& e : stream) dynamic.InsertEdge(e.src, e.dst);
    const double incr_s = timer.ElapsedSeconds();

    timer.Reset();
    DarcEdgeResult fixed = SolveDarcEdgeCover(g, opts);
    const double static_s = timer.ElapsedSeconds();

    char us[32], speed[32];
    std::snprintf(us, sizeof(us), "%.1f",
                  incr_s * 1e6 / double(stream.size()));
    // Speedup model: recomputing after each arrival costs ~static_s per
    // checkpoint vs one incremental insertion.
    std::snprintf(speed, sizeof(speed), "%.0fx",
                  incr_s > 0 ? static_s / (incr_s / double(stream.size()))
                             : 0.0);
    table.AddRow({name, FormatCount(stream.size()),
                  FormatSeconds(incr_s, false), us,
                  FormatSeconds(static_s, false), speed,
                  FormatCount(dynamic.EdgeCover().size()),
                  FormatCount(fixed.edge_cover.size())});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nReading: one incremental insertion costs microseconds — the\n"
      "speedup column is how much cheaper that is than re-running the\n"
      "static solver after each arrival (the paper's fraud-detection\n"
      "motivation is exactly this streaming regime).\n");
  return 0;
}
