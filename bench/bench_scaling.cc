// Scalability: TDB++ end-to-end runtime as the proxy grows at fixed
// average degree. The paper's claim is O(k*m*n) worst-case with near-linear
// practical behavior (the per-vertex searches touch local neighborhoods,
// not the whole graph); this sweep makes the growth exponent visible.
#include <cstdio>

#include "bench_runner.h"
#include "datasets.h"
#include "table_printer.h"

int main() {
  using namespace tdb;
  using namespace tdb::bench;

  constexpr uint32_t kHop = 5;
  const double timeout = BenchTimeout(120.0);
  const double base = BenchScale();

  std::printf("== Scaling: TDB++ vs graph size (k = %u, WGO-shaped) ==\n",
              kHop);
  const DatasetSpec* spec = FindDataset("WGO");
  TablePrinter table(
      {"scale", "|V|", "|E|", "TDB++ s", "cover", "s per 1k vertices"});
  double prev_rate = 0.0;
  for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const double s = scale * base;
    CsrGraph g = BuildProxy(*spec, s);
    Cell c = RunCovered(g, CoverAlgorithm::kTdbPlusPlus, kHop, timeout);
    const double rate =
        c.timed_out ? 0.0
                    : c.seconds / (double(g.num_vertices()) / 1000.0);
    char scale_s[32], rate_s[32];
    std::snprintf(scale_s, sizeof(scale_s), "%.2f", s);
    std::snprintf(rate_s, sizeof(rate_s), "%.4f", rate);
    table.AddRow({scale_s,
                  FormatMagnitude(static_cast<double>(g.num_vertices())),
                  FormatMagnitude(static_cast<double>(g.num_edges())),
                  FormatSeconds(c.seconds, c.timed_out),
                  FormatCount(c.cover_size, c.timed_out || c.failed),
                  c.timed_out ? "-" : rate_s});
    std::fflush(stdout);
    prev_rate = rate;
  }
  (void)prev_rate;
  table.Print();
  std::printf(
      "\nReading: per-vertex cost (last column) grows slowly with size —\n"
      "far below the O(k*m) worst case per validation.\n");
  return 0;
}
