// Reproduces Figure 10: the top-down technique ablation. TDB (plain DFS
// validation) vs TDB+ (block technique) vs TDB++ (blocks + BFS filter) on
// the WKV and WGO proxies, k = 3..7. The three always produce identical
// covers, so only runtime is reported (as in the paper).
//
// Reproduction note (see EXPERIMENTS.md): on the randomized proxies the
// three variants tie — with first-cycle termination, failed validations
// are cheap in reciprocity-rich Zipf graphs, so there is nothing for the
// blocks to prune. The paper's separation comes from the hierarchical fan
// regions of the real web corpora; the FUNNEL workload below isolates that
// structure and shows the gap (plain = width^(k-1) per failed validation,
// blocks = O(k*m), BFS filter = O(reach)).
#include <cstdio>

#include "bench_runner.h"
#include "datasets.h"
#include "graph/generators.h"
#include "table_printer.h"

int main() {
  using namespace tdb;
  using namespace tdb::bench;

  const double scale = BenchScale();
  const double timeout = BenchTimeout(15.0);

  std::printf(
      "== Figure 10: TDB vs TDB+ vs TDB++ (scale %.3g, budget %.0fs) ==\n",
      scale, timeout);
  for (const char* name : {"WKV", "WGO"}) {
    const DatasetSpec* spec = FindDataset(name);
    CsrGraph g = BuildProxy(*spec, scale);
    std::printf("\n-- %s (%s) --\n", spec->name, spec->full_name);
    TablePrinter table({"k", "TDB s", "TDB+ s", "TDB++ s", "cover"});
    for (uint32_t k = 3; k <= 7; ++k) {
      Cell tdb = RunCovered(g, CoverAlgorithm::kTdb, k, timeout);
      Cell plus = RunCovered(g, CoverAlgorithm::kTdbPlus, k, timeout);
      Cell pp = RunCovered(g, CoverAlgorithm::kTdbPlusPlus, k, timeout);
      table.AddRow({std::to_string(k),
                    FormatSeconds(tdb.seconds, tdb.timed_out),
                    FormatSeconds(plus.seconds, plus.timed_out),
                    FormatSeconds(pp.seconds, pp.timed_out),
                    FormatCount(pp.cover_size, pp.timed_out || pp.failed)});
      std::fflush(stdout);
    }
    table.Print();
  }

  // Adversarial funnel: the structure the block technique targets.
  // Reversed ids force every validation to face its full downstream fan.
  std::printf("\n-- FUNNEL (layered all-to-all DAG, width 10 x 14) --\n");
  CsrGraph funnel = MakeLayeredFunnel(10, 14, /*reverse_ids=*/true);
  TablePrinter table({"k", "TDB s", "TDB+ s", "TDB++ s"});
  for (uint32_t k = 3; k <= 7; ++k) {
    Cell tdb = RunCovered(funnel, CoverAlgorithm::kTdb, k, timeout);
    Cell plus = RunCovered(funnel, CoverAlgorithm::kTdbPlus, k, timeout);
    Cell pp = RunCovered(funnel, CoverAlgorithm::kTdbPlusPlus, k, timeout);
    table.AddRow({std::to_string(k),
                  FormatSeconds(tdb.seconds, tdb.timed_out),
                  FormatSeconds(plus.seconds, plus.timed_out),
                  FormatSeconds(pp.seconds, pp.timed_out)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): block technique and BFS filter each\n"
      "contribute speedups; the BFS filter matters more at large k. On\n"
      "random proxies the variants tie (no hierarchical fans to prune);\n"
      "the FUNNEL rows isolate that structure and show the separation.\n");
  return 0;
}
